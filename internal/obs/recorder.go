package obs

// The flight recorder: a fixed-size ring buffer of per-instruction
// lifecycle events. Recording is a bounds-checked array store — no
// allocation, no formatting — so it can stay armed on long runs and be
// dumped only when something interesting happens (a comparator hit, a
// stall plateau, an operator request). The dump renders as Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing, with one
// lane per pipeline structure and per functional unit.

import (
	"encoding/json"
	"fmt"
	"io"

	"reese/internal/isa"
)

// EventKind labels a pipeline lifecycle event. It is shared with
// package pipeline's line-oriented trace (pipeline.EventKind is an
// alias of this type).
type EventKind uint8

// Pipeline lifecycle events.
const (
	EvFetch EventKind = iota
	EvDispatch
	EvIssue
	EvWriteback
	EvEnterRSQ
	EvDispatchR
	EvIssueR
	EvVerify
	EvCommit
	EvMispredict
	EvFaultInjected
	EvMismatch
	EvRecovery

	// NumEventKinds sizes per-kind arrays.
	NumEventKinds
)

var eventNames = [NumEventKinds]string{
	EvFetch:         "FETCH",
	EvDispatch:      "DISPATCH",
	EvIssue:         "ISSUE",
	EvWriteback:     "WRITEBACK",
	EvEnterRSQ:      "ENTER-RSQ",
	EvDispatchR:     "DISPATCH-R",
	EvIssueR:        "ISSUE-R",
	EvVerify:        "VERIFY",
	EvCommit:        "COMMIT",
	EvMispredict:    "MISPREDICT",
	EvFaultInjected: "FAULT",
	EvMismatch:      "MISMATCH",
	EvRecovery:      "RECOVERY",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one recorded lifecycle point. It is pointer-free and fixed
// size so the ring buffer is a flat array the GC never scans into.
type Event struct {
	Cycle uint64
	Seq   uint64 // RUU sequence number (0 before dispatch assigns one)
	PC    uint32
	Inst  isa.Instruction
	Kind  EventKind
	// FU is the functional-unit kind + 1 (0 = no unit involved); Unit
	// is the instance index within the kind.
	FU   uint8
	Unit int16
}

// Recorder is the ring buffer. Not safe for concurrent use — it
// belongs to one CPU's cycle loop.
type Recorder struct {
	buf     []Event
	next    int
	n       int
	dropped uint64
}

// NewRecorder allocates a recorder holding the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record appends an event, overwriting the oldest when full. O(1), no
// allocation.
func (r *Recorder) Record(e Event) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.dropped++
	}
}

// Len reports how many events are held.
func (r *Recorder) Len() int { return r.n }

// Cap reports the ring capacity.
func (r *Recorder) Cap() int { return len(r.buf) }

// Dropped reports how many events were overwritten by wraparound.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Events returns the held events oldest-first (a copy).
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		j := start + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		out = append(out, r.buf[j])
	}
	return out
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

// Trace lanes (Chrome trace "thread" ids). Functional-unit lanes start
// at fuLaneBase and encode kind and unit so every physical unit gets
// its own row.
const (
	laneEvents   = 0 // instants: mispredicts, faults, mismatches, recoveries
	laneFetchQ   = 1 // fetch → dispatch
	laneWindow   = 2 // dispatch → issue (operand wait + scheduling)
	laneRSQ      = 3 // RSQ entry → R-dispatch (recheck wait)
	laneCommit   = 4 // commit instants
	fuLaneBase   = 16
	fuLaneStride = 16 // units per kind lane block
)

// fuKindNames mirrors internal/fu's kind order; obs stays decoupled
// from that package so the recorder can be tested standalone.
var fuKindNames = [...]string{"int-alu", "int-mult", "mem-port", "fp-alu", "fp-mult"}

func fuLane(fu uint8, unit int16) int {
	return fuLaneBase + int(fu-1)*fuLaneStride + int(unit)
}

func fuLaneName(fu uint8, unit int16) string {
	kind := "fu"
	if int(fu-1) < len(fuKindNames) {
		kind = fuKindNames[fu-1]
	}
	return fmt.Sprintf("%s %d", kind, unit)
}

// chromeEvent is one entry of the trace-event JSON array. Field order
// matches the Trace Event Format docs; ts/dur are in microseconds,
// which we map 1:1 to cycles.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// seqState is the per-instruction pairing state the exporter threads
// between lifecycle events to turn points into duration slices.
type seqState struct {
	fetch, dispatch, issue, rsqEnter, rIssue uint64
	haveFetch, haveDispatch, haveIssue       bool
	haveRSQEnter, haveRIssue                 bool
	fu                                       uint8
	unit                                     int16
}

// WriteChromeTrace renders the held events as Chrome trace-event JSON
// ("JSON Object Format"), loadable in Perfetto. One lane per pipeline
// structure (fetch queue, window, RSQ), one per functional unit, plus
// instant lanes for commits and notable events. Cycle stamps map to
// microseconds so a 1-cycle stage shows as 1µs.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	out := make([]chromeEvent, 0, len(events)+8)
	lanes := map[int]string{
		laneEvents: "events",
		laneFetchQ: "fetch-queue",
		laneWindow: "window",
		laneCommit: "commit",
	}
	states := make(map[uint64]*seqState)
	st := func(seq uint64) *seqState {
		s := states[seq]
		if s == nil {
			s = &seqState{}
			states[seq] = s
		}
		return s
	}
	slice := func(name string, lane int, from, to uint64, args map[string]any) {
		dur := to - from
		out = append(out, chromeEvent{
			Name: name, Ph: "X", Ts: from, Dur: &dur, Pid: 1, Tid: lane, Args: args,
		})
	}
	instant := func(name string, lane int, at uint64, args map[string]any) {
		out = append(out, chromeEvent{
			Name: name, Ph: "i", Ts: at, Pid: 1, Tid: lane, S: "t", Args: args,
		})
	}
	for _, e := range events {
		name := e.Inst.String()
		args := map[string]any{"seq": e.Seq, "pc": fmt.Sprintf("%#08x", e.PC)}
		switch e.Kind {
		case EvFetch:
			s := st(e.Seq)
			s.fetch, s.haveFetch = e.Cycle, true
		case EvDispatch:
			s := st(e.Seq)
			if s.haveFetch {
				slice(name, laneFetchQ, s.fetch, e.Cycle, args)
			}
			s.dispatch, s.haveDispatch = e.Cycle, true
		case EvIssue:
			s := st(e.Seq)
			if s.haveDispatch {
				slice(name, laneWindow, s.dispatch, e.Cycle, args)
			}
			s.issue, s.haveIssue = e.Cycle, true
			s.fu, s.unit = e.FU, e.Unit
		case EvWriteback:
			s := st(e.Seq)
			if s.haveIssue && s.fu > 0 {
				lane := fuLane(s.fu, s.unit)
				lanes[lane] = fuLaneName(s.fu, s.unit)
				slice(name, lane, s.issue, e.Cycle, args)
			}
		case EvEnterRSQ:
			s := st(e.Seq)
			s.rsqEnter, s.haveRSQEnter = e.Cycle, true
		case EvDispatchR:
			s := st(e.Seq)
			if s.haveRSQEnter {
				lanes[laneRSQ] = "rsq"
				slice(name+" (rsq wait)", laneRSQ, s.rsqEnter, e.Cycle, args)
			}
		case EvIssueR:
			s := st(e.Seq)
			s.rIssue, s.haveRIssue = e.Cycle, true
			s.fu, s.unit = e.FU, e.Unit
		case EvVerify:
			s := st(e.Seq)
			if s.haveRIssue && s.fu > 0 {
				lane := fuLane(s.fu, s.unit)
				lanes[lane] = fuLaneName(s.fu, s.unit)
				slice(name+" (R)", lane, s.rIssue, e.Cycle, args)
			}
		case EvCommit:
			instant(name, laneCommit, e.Cycle, args)
		default:
			instant(e.Kind.String()+" "+name, laneEvents, e.Cycle, args)
		}
	}

	// Lane-name metadata, smallest tid first for deterministic output.
	meta := make([]chromeEvent, 0, len(lanes))
	for tid := 0; tid < fuLaneBase+len(fuKindNames)*fuLaneStride; tid++ {
		name, ok := lanes[tid]
		if !ok {
			continue
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{
		TraceEvents:     append(meta, out...),
		DisplayTimeUnit: "ms",
	})
}
