// Command reese-sim runs one workload on one machine configuration and
// prints the simulation statistics.
//
// Usage:
//
//	reese-sim [flags]
//
// Examples:
//
//	reese-sim -workload gcc
//	reese-sim -workload vortex -reese -spare-alus 2 -insts 500000
//	reese-sim -asm prog.s -reese
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"reese/internal/asm"
	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/obs"
	"reese/internal/pipeline"
	"reese/internal/program"
	"reese/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workloadName = flag.String("workload", "gcc", "benchmark to run (gcc, go, ijpeg, li, perl, vortex)")
		asmFile      = flag.String("asm", "", "run an SS32 assembly file instead of a named workload")
		insts        = flag.Uint64("insts", 200_000, "committed-instruction budget (0 = run to halt)")
		fastfwd      = flag.Uint64("fastfwd", 0, "functionally skip N instructions before timing (SimpleScalar -fastfwd)")
		iters        = flag.Int("iters", 0, "workload outer iterations (0 = default)")

		reese      = flag.Bool("reese", false, "enable REESE redundant execution")
		dup        = flag.Bool("dup", false, "enable duplicate-at-scheduler redundancy (Franklin [24] comparison scheme)")
		spareALUs  = flag.Int("spare-alus", 0, "spare integer ALUs to add")
		spareMults = flag.Int("spare-mults", 0, "spare integer multiplier/dividers to add")
		ruuSize    = flag.Int("ruu", 0, "override RUU size (LSQ follows at half)")
		width      = flag.Int("width", 0, "override datapath width")
		memPorts   = flag.Int("mem-ports", 0, "override memory-port count")
		rsqSize    = flag.Int("rsq", 0, "override R-stream Queue size")
		partial    = flag.Int("partial", 0, "re-execute only 1 in N instructions (REESE)")
		reso       = flag.Bool("reso", false, "R stream recomputes with shifted operands (detects permanent FU faults)")
		wrongPath  = flag.Bool("wrongpath", false, "model wrong-path execution after mispredictions")

		faultSeq = flag.Uint64("fault-at", 0, "inject one bit flip into instruction #N (0 = none)")
		faultBit = flag.Uint("fault-bit", 7, "bit position for -fault-at")

		tracePath = flag.String("trace", "", "write a per-event pipeline trace to this file (- for stdout)")
		traceOut  = flag.String("trace-out", "", "dump the flight recorder as Chrome trace-event JSON to this file (load in Perfetto)")
		traceBuf  = flag.Int("trace-buf", 16384, "flight-recorder ring capacity (events) for -trace-out")
		why       = flag.Bool("why", false, "print the per-cause stall attribution report (where the unused slots went)")
		asJSON    = flag.Bool("json", false, "emit the result as JSON instead of text")
	)
	flag.Parse()

	cfg := config.Starting()
	if *ruuSize > 0 {
		cfg = cfg.WithRUU(*ruuSize)
	}
	if *width > 0 {
		cfg = cfg.WithWidth(*width)
	}
	if *memPorts > 0 {
		cfg = cfg.WithMemPorts(*memPorts)
	}
	if *wrongPath {
		cfg = cfg.WithWrongPath()
	}
	if *dup {
		cfg = cfg.WithDupDispatch()
	}
	if *reese {
		cfg = cfg.WithReese()
		if *rsqSize > 0 {
			cfg = cfg.WithRSQ(*rsqSize)
		}
		if *partial > 1 {
			cfg = cfg.WithPartialReexec(*partial)
		}
		if *reso {
			cfg = cfg.WithRESO()
		}
	}
	if *spareALUs > 0 || *spareMults > 0 {
		cfg = cfg.WithSpares(*spareALUs, *spareMults)
	}

	var (
		prog *program.Program
		err  error
	)
	if *asmFile != "" {
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "reese-sim:", rerr)
			return 1
		}
		prog, err = asm.Assemble(*asmFile, string(src))
	} else {
		spec, ok := workload.ByName(*workloadName)
		if !ok {
			fmt.Fprintf(os.Stderr, "reese-sim: unknown workload %q (have %v)\n", *workloadName, workload.Names())
			return 1
		}
		it := *iters
		if it == 0 && *insts > 0 {
			it = spec.DefaultIters * 2
		}
		prog, err = spec.Build(it)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-sim:", err)
		return 1
	}

	var injector fault.Injector = fault.None{}
	if *faultSeq > 0 {
		injector = &fault.AtSeq{Seq: *faultSeq, Bit: uint8(*faultBit)}
	}

	cpu, err := pipeline.New(cfg, prog, injector)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-sim:", err)
		return 1
	}
	if *tracePath != "" {
		w := os.Stdout
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reese-sim:", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		cpu.SetTrace(w)
	}
	var rec *obs.Recorder
	if *traceOut != "" {
		rec = obs.NewRecorder(*traceBuf)
		cpu.SetRecorder(rec)
	}
	if *fastfwd > 0 {
		if _, err := cpu.FastForward(*fastfwd); err != nil {
			fmt.Fprintln(os.Stderr, "reese-sim:", err)
			return 1
		}
	}
	res, err := cpu.Run(*insts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-sim:", err)
		return 1
	}
	if rec != nil {
		f, cerr := os.Create(*traceOut)
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "reese-sim:", cerr)
			return 1
		}
		werr := rec.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "reese-sim:", werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "reese-sim: wrote %d flight-recorder events (%d overwritten) to %s; open in https://ui.perfetto.dev\n",
			rec.Len(), rec.Dropped(), *traceOut)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "reese-sim:", err)
			return 1
		}
	} else {
		printResult(res, cfg.Reese.RSQSize)
		if *why {
			printWhy(res)
		}
	}
	if res.PermError {
		return 2
	}
	return 0
}

// printWhy renders the stall attribution report: for each slot class
// (dispatch/issue/commit), the share of the run's slot budget that did
// work and where every unused slot went, one row per cause. The rows of
// a column sum to 100% by construction (the invariant the pipeline
// tests check), so this table is a complete answer to "why is it
// slow?".
func printWhy(r pipeline.Result) {
	classes := []struct {
		name string
		b    obs.SlotBreakdown
	}{
		{"dispatch", r.Stalls.Dispatch},
		{"issue", r.Stalls.Issue},
		{"commit", r.Stalls.Commit},
	}
	fmt.Printf("\nstall attribution (%% of slot-cycles over %d cycles)\n", r.Stalls.Cycles)
	fmt.Printf("  %-18s", "cause")
	for _, cl := range classes {
		fmt.Printf("  %9s", fmt.Sprintf("%s×%d", cl.name, cl.b.Width))
	}
	fmt.Println()
	fmt.Printf("  %-18s", "(used)")
	for _, cl := range classes {
		fmt.Printf("  %8.1f%%", cl.b.UtilPct())
	}
	fmt.Println()
	for cause := obs.StallCause(1); cause < obs.NumCauses; cause++ {
		all := uint64(0)
		for _, cl := range classes {
			all += cl.b.Stalls[cause]
		}
		if all == 0 {
			continue
		}
		fmt.Printf("  %-18s", cause.String())
		for _, cl := range classes {
			if cl.b.Stalls[cause] == 0 {
				fmt.Printf("  %9s", "-")
				continue
			}
			fmt.Printf("  %8.1f%%", cl.b.Pct(cause))
		}
		fmt.Println()
	}
}

func printResult(r pipeline.Result, cfgRSQ int) {
	fmt.Printf("workload:          %s\n", r.Workload)
	fmt.Printf("config:            %s\n", r.Config)
	if r.FastForwarded > 0 {
		fmt.Printf("fast-forwarded:    %d instructions (untimed)\n", r.FastForwarded)
	}
	fmt.Printf("committed:         %d instructions\n", r.Committed)
	fmt.Printf("cycles:            %d\n", r.Cycles)
	fmt.Printf("IPC:               %.4f\n", r.IPC)
	fmt.Printf("halted:            %v   permanent-error: %v\n", r.Halted, r.PermError)
	fmt.Printf("branches:          %d (%.2f%% predicted)\n", r.Branches, r.BranchAcc*100)
	fmt.Printf("fetch stalls:      icache=%d  branch=%d cycles\n", r.FetchICacheStalls, r.FetchBranchStalls)
	if r.WrongPathFetched > 0 {
		fmt.Printf("wrong path:        fetched=%d squashed=%d\n", r.WrongPathFetched, r.WrongPathSquashed)
	}
	fmt.Printf("dispatch stalls:   ruu-full=%d  lsq-full=%d\n", r.DispatchRUUFull, r.DispatchLSQFull)
	fmt.Printf("fu utilisation:    alu=%.1f%%  mult=%.1f%%  memport=%.1f%%\n",
		r.ALUUtil*100, r.MultUtil*100, r.MemPortUtil*100)
	fmt.Printf("instruction mix:   alu=%.0f%% mult=%.0f%% load=%.0f%% store=%.0f%% ctrl=%.0f%% fp=%.0f%%\n",
		r.Mix.IntALU*100, r.Mix.IntMult*100, r.Mix.Load*100, r.Mix.Store*100, r.Mix.Control*100, r.Mix.FP*100)
	fmt.Printf("caches:            il1 %.2f%% miss, dl1 %.2f%% miss, l2 %.2f%% miss\n",
		r.L1I.MissRate()*100, r.L1D.MissRate()*100, r.L2.MissRate()*100)
	if r.Reese != nil {
		fmt.Printf("reese:             enq=%d reexec=%d verified=%d mismatch=%d skipped=%d\n",
			r.Reese.Enqueued, r.Reese.Reexecuted, r.Reese.Verified, r.Reese.Mismatches, r.Reese.Skipped)
		fmt.Printf("reese pressure:    rsq-full-stalls=%d priority-cycles=%d\n",
			r.Reese.FullStalls, r.Reese.PriorityCycles)
		fmt.Printf("rsq occupancy:     mean=%.1f max=%d of %d\n",
			r.RSQOccupancyMean, r.RSQOccupancyMax, cfgRSQ)
	}
	if r.FaultsInjected > 0 {
		fmt.Printf("faults:            injected=%d detected=%d silent=%d recoveries=%d\n",
			r.FaultsInjected, r.FaultsDetected, r.FaultsSilent, r.Recoveries)
		if r.FaultsDetected > 0 {
			fmt.Printf("detection latency: mean=%.1f max=%d cycles\n",
				r.DetectionLatencyMean, r.DetectionLatencyMax)
		}
	}
}
