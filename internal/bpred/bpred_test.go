package bpred

import (
	"math/rand"
	"testing"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter underflow: %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter overflow: %d", c)
	}
	if !c.taken() || counter(1).taken() {
		t.Error("taken threshold wrong")
	}
}

func TestGshareLearnsAlwaysTaken(t *testing.T) {
	g, err := NewGshare(12)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x1000)
	for i := 0; i < 20; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("gshare failed to learn always-taken")
	}
}

func TestGshareLearnsAlternatingViaHistory(t *testing.T) {
	// A strictly alternating branch is perfectly predictable with global
	// history: after warmup gshare should exceed 90% accuracy.
	g, err := NewGshare(12)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x2000)
	taken := false
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		p := g.Predict(pc)
		if i > 500 {
			total++
			if p == taken {
				correct++
			}
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("gshare accuracy on alternating = %.2f, want > 0.9", acc)
	}
}

func TestGshareBeatsBimodalOnCorrelated(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: global
	// history captures this, a bimodal table cannot.
	g, _ := NewGshare(12)
	b, _ := NewBimodal(12)
	r := rand.New(rand.NewSource(7))
	pcA, pcB := uint32(0x100), uint32(0x200)
	var gCorrect, bCorrect, total int
	for i := 0; i < 5000; i++ {
		outA := r.Intn(2) == 0
		g.Update(pcA, outA)
		b.Update(pcA, outA)
		// B repeats A deterministically.
		outB := outA
		if i > 1000 {
			total++
			if g.Predict(pcB) == outB {
				gCorrect++
			}
			if b.Predict(pcB) == outB {
				bCorrect++
			}
		}
		g.Update(pcB, outB)
		b.Update(pcB, outB)
	}
	gAcc := float64(gCorrect) / float64(total)
	bAcc := float64(bCorrect) / float64(total)
	if gAcc < 0.95 {
		t.Errorf("gshare accuracy on correlated = %.2f, want > 0.95", gAcc)
	}
	if gAcc <= bAcc {
		t.Errorf("gshare (%.2f) should beat bimodal (%.2f) on correlated branches", gAcc, bAcc)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b, err := NewBimodal(10)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x400)
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal failed to learn not-taken bias")
	}
	// Different PC maps to a different counter: still default.
	if !b.Predict(pc + 4) {
		t.Error("unrelated PC affected")
	}
}

func TestStatic(t *testing.T) {
	st := &Static{Taken: true}
	if !st.Predict(0) {
		t.Error("static taken")
	}
	st.Update(0, false) // no-op
	if !st.Predict(0) {
		t.Error("static must not learn")
	}
	snt := &Static{}
	if snt.Predict(0) {
		t.Error("static not-taken")
	}
	if st.Name() == snt.Name() {
		t.Error("names must differ")
	}
}

func TestCombiningPrefersBetterComponent(t *testing.T) {
	// Component 1 = always right (oracle-ish static taken on always-taken
	// stream), component 2 = always wrong.
	c, err := NewCombining(&Static{Taken: true}, &Static{Taken: false}, 10)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x10)
	for i := 0; i < 20; i++ {
		c.Update(pc, true)
	}
	if !c.Predict(pc) {
		t.Error("combining should have learned to trust the taken component")
	}
}

func TestPredictorValidation(t *testing.T) {
	if _, err := NewGshare(0); err == nil {
		t.Error("gshare bits 0 should fail")
	}
	if _, err := NewGshare(30); err == nil {
		t.Error("gshare bits 30 should fail")
	}
	if _, err := NewBimodal(0); err == nil {
		t.Error("bimodal bits 0 should fail")
	}
	if _, err := NewCombining(&Static{}, &Static{}, 0); err == nil {
		t.Error("combining bits 0 should fail")
	}
	if _, err := NewBTB(3, 2); err == nil {
		t.Error("btb sets 3 should fail")
	}
	if _, err := NewBTB(4, 0); err == nil {
		t.Error("btb assoc 0 should fail")
	}
	if _, err := NewRAS(0); err == nil {
		t.Error("ras size 0 should fail")
	}
}

func TestBTBBasic(t *testing.T) {
	btb, err := NewBTB(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := btb.Lookup(0x100); ok {
		t.Error("empty BTB should miss")
	}
	btb.Insert(0x100, 0x500)
	tgt, ok := btb.Lookup(0x100)
	if !ok || tgt != 0x500 {
		t.Errorf("lookup = %#x,%v", tgt, ok)
	}
	// Re-insert updates the target in place.
	btb.Insert(0x100, 0x600)
	if tgt, _ := btb.Lookup(0x100); tgt != 0x600 {
		t.Errorf("updated target = %#x", tgt)
	}
}

func TestBTBReplacement(t *testing.T) {
	btb, err := NewBTB(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three PCs in the same set (stride sets*4 = 16 bytes).
	a, b, c := uint32(0x00), uint32(0x10), uint32(0x20)
	btb.Insert(a, 1)
	btb.Insert(b, 2)
	btb.Lookup(a) // a becomes MRU
	btb.Insert(c, 3)
	if _, ok := btb.Lookup(a); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := btb.Lookup(b); ok {
		t.Error("LRU entry should have been evicted")
	}
}

func TestRAS(t *testing.T) {
	r, err := NewRAS(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS should fail to pop")
	}
	r.Push(10)
	r.Push(20)
	if r.Depth() != 2 {
		t.Errorf("depth = %d", r.Depth())
	}
	if v, _ := r.Pop(); v != 20 {
		t.Errorf("pop = %d, want 20", v)
	}
	if v, _ := r.Pop(); v != 10 {
		t.Errorf("pop = %d, want 10", v)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r, _ := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
	// Third pop returns the overwritten slot (now 3's old position).
	if v, ok := r.Pop(); !ok || v != 3 {
		t.Errorf("wrapped pop = %d,%v", v, ok)
	}
}

func TestStatsAccuracy(t *testing.T) {
	s := Stats{}
	if s.Accuracy() != 0 {
		t.Error("empty accuracy")
	}
	s = Stats{Lookups: 4, Hits: 3}
	if s.Accuracy() != 0.75 {
		t.Errorf("accuracy = %v", s.Accuracy())
	}
}

func TestGshareSnapshotTrainAt(t *testing.T) {
	g, _ := NewGshare(8)
	snap := g.Snapshot()
	pred := g.Predict(0x40)
	// History moves on (speculative shifts for later branches).
	g.ShiftHistory(true)
	g.ShiftHistory(false)
	g.ShiftHistory(true)
	// Training with the snapshot must adjust the entry the prediction
	// used: repeat until the prediction under the ORIGINAL history
	// flips.
	for i := 0; i < 4; i++ {
		g.TrainAt(0x40, snap, !pred)
	}
	g.Restore(snap)
	if g.Predict(0x40) == pred {
		t.Error("TrainAt did not reach the predicted entry")
	}
}

func TestGshareRestore(t *testing.T) {
	g, _ := NewGshare(10)
	g.ShiftHistory(true)
	g.ShiftHistory(true)
	snap := g.Snapshot()
	g.ShiftHistory(false)
	g.ShiftHistory(true)
	g.Restore(snap)
	if g.Snapshot() != snap {
		t.Errorf("restore: %#x != %#x", g.Snapshot(), snap)
	}
}

func TestHistoryFreeSnapshotRestore(t *testing.T) {
	b, _ := NewBimodal(8)
	if b.Snapshot() != 0 {
		t.Error("bimodal snapshot")
	}
	b.Restore(5) // no-op, must not panic
	s := &Static{}
	if s.Snapshot() != 0 {
		t.Error("static snapshot")
	}
	s.Restore(1)
}
