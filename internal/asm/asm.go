// Package asm implements a two-pass assembler for the SS32 ISA. The
// benchmark workloads in internal/workload are written in this assembly
// language and assembled at runtime, which keeps the whole toolchain
// self-contained (no external binaries, as the paper's SPEC95/PISA
// toolchain would have required).
//
// Syntax overview:
//
//	; line comment (also # and //)
//	.text / .data        switch segments (text is the default)
//	label:               define a label in the current segment
//	add r1, r2, r3       register instruction
//	addi r1, r2, -5      immediate instruction
//	lw r1, 8(r2)         load; sw r1, 8(r2) store
//	beq r1, r2, label    branch to label (or numeric word offset)
//	j label / jal label  jumps
//	li r1, 0x12345678    pseudo: load 32-bit constant (1-2 instructions)
//	la r1, label         pseudo: load address of label (2 instructions)
//	move r1, r2          pseudo: addi r1, r2, 0
//	nop                  pseudo: addi r0, r0, 0
//	.word 1, 2, label    32-bit data (labels allowed)
//	.half 1, 2           16-bit data
//	.byte 1, 2           8-bit data
//	.space 64            zeroed bytes
//	.asciiz "text"       NUL-terminated string
//	.align 4             pad to a multiple of N bytes
//	.equ NAME, 42        named constant, usable wherever a number is
//
// Registers are r0..r31 with aliases zero (r0), gp (r28), sp (r29) and
// ra (r31).
package asm

import (
	"fmt"
	"strings"

	"reese/internal/isa"
	"reese/internal/program"
)

// Error is an assembly error tagged with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) *Error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble translates SS32 assembly source into a loadable program.
func Assemble(name, source string) (*program.Program, error) {
	a := &assembler{
		prog:   program.New(name),
		labels: make(map[string]labelDef),
		consts: make(map[string]int64),
	}
	if err := a.run(source); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// MustAssemble is Assemble panicking on error, for statically known-good
// embedded sources (the workload library).
func MustAssemble(name, source string) *program.Program {
	p, err := Assemble(name, source)
	if err != nil {
		panic(err)
	}
	return p
}

type segment uint8

const (
	segText segment = iota
	segData
)

type labelDef struct {
	addr uint32
	line int
}

// item is one parsed source statement retained for pass 2.
type item struct {
	line   int
	seg    segment
	addr   uint32 // assigned address of first byte
	mnem   string
	args   []string
	direct bool // directive (.word etc.) rather than instruction
}

type assembler struct {
	prog   *program.Program
	labels map[string]labelDef
	consts map[string]int64 // .equ definitions
	items  []item

	textPC  uint32 // next text address
	dataOff uint32 // next data offset from DataBase
}

// resolveConst substitutes a .equ constant for arg, if one is defined.
func (a *assembler) resolveConst(arg string) string {
	if v, ok := a.consts[strings.TrimSpace(arg)]; ok {
		return fmt.Sprint(v)
	}
	return arg
}

func (a *assembler) run(source string) error {
	if err := a.pass1(source); err != nil {
		return err
	}
	return a.pass2()
}

// pass1 tokenises, assigns addresses, and records label definitions.
func (a *assembler) pass1(source string) error {
	a.textPC = program.TextBase
	seg := segText
	for lineNo, raw := range strings.Split(source, "\n") {
		line := stripComment(raw)
		// Peel off any leading "label:" prefixes.
		for {
			trimmed := strings.TrimSpace(line)
			idx := strings.Index(trimmed, ":")
			if idx <= 0 || strings.ContainsAny(trimmed[:idx], " \t\",()") {
				line = trimmed
				break
			}
			label := trimmed[:idx]
			if prev, dup := a.labels[label]; dup {
				return errf(lineNo+1, "label %q already defined at line %d", label, prev.line)
			}
			a.labels[label] = labelDef{addr: a.here(seg), line: lineNo + 1}
			line = trimmed[idx+1:]
		}
		if line == "" {
			continue
		}
		mnem, args := splitStatement(line)
		switch mnem {
		case ".text":
			seg = segText
			continue
		case ".data":
			seg = segData
			continue
		case ".equ":
			if len(args) != 2 {
				return errf(lineNo+1, ".equ wants NAME, value")
			}
			name := strings.TrimSpace(args[0])
			if name == "" || strings.ContainsAny(name, " \t(),") {
				return errf(lineNo+1, ".equ: bad name %q", name)
			}
			if _, dup := a.consts[name]; dup {
				return errf(lineNo+1, ".equ: %q already defined", name)
			}
			v, err := parseInt64(a.resolveConst(args[1]))
			if err != nil {
				return errf(lineNo+1, ".equ: %v", err)
			}
			a.consts[name] = v
			continue
		}
		// Substitute .equ constants in the operands (memory operands
		// like "OFF(r2)" are handled by substituting the offset part).
		for i := range args {
			if idx := strings.Index(args[i], "("); idx > 0 {
				args[i] = a.resolveConst(args[i][:idx]) + args[i][idx:]
				continue
			}
			args[i] = a.resolveConst(args[i])
		}
		it := item{line: lineNo + 1, seg: seg, addr: a.here(seg), mnem: mnem, args: args}
		size, direct, err := a.sizeOf(&it)
		if err != nil {
			return err
		}
		it.direct = direct
		a.items = append(a.items, it)
		if seg == segText {
			a.textPC += size
		} else {
			a.dataOff += size
		}
	}
	return nil
}

func (a *assembler) here(seg segment) uint32 {
	if seg == segText {
		return a.textPC
	}
	return program.DataBase + a.dataOff
}

// sizeOf returns the byte size the statement occupies and whether it is a
// directive. For .align the current offset matters, so it is computed
// against it.addr.
func (a *assembler) sizeOf(it *item) (uint32, bool, error) {
	if strings.HasPrefix(it.mnem, ".") {
		switch it.mnem {
		case ".word":
			return 4 * uint32(len(it.args)), true, nil
		case ".half":
			return 2 * uint32(len(it.args)), true, nil
		case ".byte":
			return uint32(len(it.args)), true, nil
		case ".space":
			if len(it.args) != 1 {
				return 0, true, errf(it.line, ".space wants one argument")
			}
			n, err := parseUint(it.args[0])
			if err != nil {
				return 0, true, errf(it.line, ".space: %v", err)
			}
			return n, true, nil
		case ".asciiz":
			s, err := parseString(strings.Join(it.args, ", "))
			if err != nil {
				return 0, true, errf(it.line, ".asciiz: %v", err)
			}
			return uint32(len(s)) + 1, true, nil
		case ".align":
			if len(it.args) != 1 {
				return 0, true, errf(it.line, ".align wants one argument")
			}
			n, err := parseUint(it.args[0])
			if err != nil || n == 0 || n&(n-1) != 0 {
				return 0, true, errf(it.line, ".align wants a power of two")
			}
			pad := (n - it.addr%n) % n
			return pad, true, nil
		default:
			return 0, true, errf(it.line, "unknown directive %q", it.mnem)
		}
	}
	if it.seg != segText {
		return 0, false, errf(it.line, "instruction %q in .data segment", it.mnem)
	}
	// Pseudo-instructions may expand to more than one word.
	switch it.mnem {
	case "li":
		if len(it.args) != 2 {
			return 0, false, errf(it.line, "li wants rd, imm")
		}
		v, err := parseInt32(it.args[1])
		if err != nil {
			return 0, false, errf(it.line, "li: %v", err)
		}
		if v >= isa.MinImm16 && v <= isa.MaxImm16 {
			return 4, false, nil
		}
		return 8, false, nil
	case "la":
		return 8, false, nil
	case "move", "nop", "not", "neg", "ble", "bgt", "bleu", "bgtu", "beqz", "bnez", "call", "ret":
		return 4, false, nil
	}
	if _, ok := isa.OpByName(it.mnem); !ok {
		return 0, false, errf(it.line, "unknown instruction %q", it.mnem)
	}
	return 4, false, nil
}

// pass2 emits code and data with all labels resolved.
func (a *assembler) pass2() error {
	data := make([]byte, a.dataOff)
	for i := range a.items {
		it := &a.items[i]
		if it.direct {
			if it.seg == segText {
				return errf(it.line, "data directive %q in .text segment", it.mnem)
			}
			if err := a.emitData(it, data); err != nil {
				return err
			}
			continue
		}
		if err := a.emitCode(it); err != nil {
			return err
		}
	}
	a.prog.Data = data
	for name, def := range a.labels {
		a.prog.Symbols[name] = def.addr
	}
	if main, ok := a.labels["main"]; ok {
		a.prog.Entry = main.addr
	}
	return nil
}

func (a *assembler) emitData(it *item, data []byte) error {
	off := it.addr - program.DataBase
	put := func(width uint32, v uint32) {
		for i := uint32(0); i < width; i++ {
			data[off] = byte(v >> (8 * i))
			off++
		}
	}
	switch it.mnem {
	case ".word", ".half", ".byte":
		width := map[string]uint32{".word": 4, ".half": 2, ".byte": 1}[it.mnem]
		for _, arg := range it.args {
			v, err := a.constOrLabel(arg, it.line)
			if err != nil {
				return err
			}
			put(width, v)
		}
	case ".space", ".align":
		// already zeroed
	case ".asciiz":
		s, err := parseString(strings.Join(it.args, ", "))
		if err != nil {
			return errf(it.line, ".asciiz: %v", err)
		}
		copy(data[off:], s)
	}
	return nil
}

// constOrLabel resolves an argument that may be a numeric constant or a
// label reference.
func (a *assembler) constOrLabel(arg string, line int) (uint32, error) {
	if def, ok := a.labels[arg]; ok {
		return def.addr, nil
	}
	v, err := parseInt64(arg)
	if err != nil {
		return 0, errf(line, "expected constant or label, got %q", arg)
	}
	return uint32(v), nil
}

func (a *assembler) emitCode(it *item) error {
	emit := func(in isa.Instruction) error {
		w, err := isa.Encode(in)
		if err != nil {
			return errf(it.line, "%v", err)
		}
		a.prog.Text = append(a.prog.Text, w)
		return nil
	}

	reg := func(i int) (isa.Reg, error) {
		if i >= len(it.args) {
			return 0, errf(it.line, "%s: missing operand %d", it.mnem, i+1)
		}
		return parseReg(it.args[i], it.line)
	}
	regIn := func(i int, file isa.RegFile) (isa.Reg, error) {
		if i >= len(it.args) {
			return 0, errf(it.line, "%s: missing operand %d", it.mnem, i+1)
		}
		return parseRegIn(it.args[i], file, it.line)
	}
	imm := func(i int) (int32, error) {
		if i >= len(it.args) {
			return 0, errf(it.line, "%s: missing operand %d", it.mnem, i+1)
		}
		v, err := parseInt32(it.args[i])
		if err != nil {
			return 0, errf(it.line, "%s: %v", it.mnem, err)
		}
		return v, nil
	}
	// branchOff resolves a label or literal to a PC-relative word offset
	// for an instruction at address pc.
	branchOff := func(i int, pc uint32) (int32, error) {
		if i >= len(it.args) {
			return 0, errf(it.line, "%s: missing target", it.mnem)
		}
		arg := it.args[i]
		if def, ok := a.labels[arg]; ok {
			delta := int64(def.addr) - int64(pc) - isa.WordBytes
			if delta%isa.WordBytes != 0 {
				return 0, errf(it.line, "misaligned branch target %q", arg)
			}
			return int32(delta / isa.WordBytes), nil
		}
		v, err := parseInt32(arg)
		if err != nil {
			return 0, errf(it.line, "%s: bad target %q", it.mnem, arg)
		}
		return v, nil
	}

	// Pseudo-instructions first.
	switch it.mnem {
	case "nop":
		return emit(isa.Nop)
	case "move":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		return emit(isa.Instruction{Op: isa.OpAddi, Rd: rd, Rs1: rs})
	case "not":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		return emit(isa.Instruction{Op: isa.OpNor, Rd: rd, Rs1: rs, Rs2: isa.RegZero})
	case "neg":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		return emit(isa.Instruction{Op: isa.OpSub, Rd: rd, Rs1: isa.RegZero, Rs2: rs})
	case "li":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		if v >= isa.MinImm16 && v <= isa.MaxImm16 {
			return emit(isa.Instruction{Op: isa.OpAddi, Rd: rd, Rs1: isa.RegZero, Imm: v})
		}
		if err := emit(isa.Instruction{Op: isa.OpLui, Rd: rd, Imm: int32(uint32(v) >> 16)}); err != nil {
			return err
		}
		return emit(isa.Instruction{Op: isa.OpOri, Rd: rd, Rs1: rd, Imm: int32(uint32(v) & 0xffff)})
	case "la":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if len(it.args) < 2 {
			return errf(it.line, "la wants rd, label")
		}
		addr, err := a.constOrLabel(it.args[1], it.line)
		if err != nil {
			return err
		}
		if err := emit(isa.Instruction{Op: isa.OpLui, Rd: rd, Imm: int32(addr >> 16)}); err != nil {
			return err
		}
		return emit(isa.Instruction{Op: isa.OpOri, Rd: rd, Rs1: rd, Imm: int32(addr & 0xffff)})
	case "beqz", "bnez":
		rs, err := reg(0)
		if err != nil {
			return err
		}
		off, err := branchOff(1, it.addr)
		if err != nil {
			return err
		}
		op := isa.OpBeq
		if it.mnem == "bnez" {
			op = isa.OpBne
		}
		return emit(isa.Instruction{Op: op, Rs1: rs, Rs2: isa.RegZero, Imm: off})
	case "ble", "bgt", "bleu", "bgtu":
		// Swap operands: ble a,b == bge b,a.
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		off, err := branchOff(2, it.addr)
		if err != nil {
			return err
		}
		op := map[string]isa.Op{"ble": isa.OpBge, "bgt": isa.OpBlt, "bleu": isa.OpBgeu, "bgtu": isa.OpBltu}[it.mnem]
		return emit(isa.Instruction{Op: op, Rs1: rs2, Rs2: rs1, Imm: off})
	case "call":
		off, err := branchOff(0, it.addr)
		if err != nil {
			return err
		}
		return emit(isa.Instruction{Op: isa.OpJal, Imm: off})
	case "ret":
		return emit(isa.Instruction{Op: isa.OpJr, Rs1: isa.RegRA})
	}

	op, ok := isa.OpByName(it.mnem)
	if !ok {
		return errf(it.line, "unknown instruction %q", it.mnem)
	}
	switch op.Format() {
	case isa.FormatR:
		switch op {
		case isa.OpJr:
			rs, err := reg(0)
			if err != nil {
				return err
			}
			return emit(isa.Instruction{Op: op, Rs1: rs})
		case isa.OpJalr:
			rd, err := reg(0)
			if err != nil {
				return err
			}
			rs, err := reg(1)
			if err != nil {
				return err
			}
			return emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs})
		case isa.OpOut:
			rs, err := reg(0)
			if err != nil {
				return err
			}
			return emit(isa.Instruction{Op: op, Rs1: rs})
		}
		rs1File, rs2File := op.SourceFiles()
		rd, err := regIn(0, op.DestFile())
		if err != nil {
			return err
		}
		if !op.ReadsRs2() {
			// Two-operand FP forms: fneg fd, fs1 / mtf fd, rs1 / ...
			rs1, err := regIn(1, rs1File)
			if err != nil {
				return err
			}
			return emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1})
		}
		rs1, err := regIn(1, rs1File)
		if err != nil {
			return err
		}
		rs2, err := regIn(2, rs2File)
		if err != nil {
			return err
		}
		return emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
	case isa.FormatI:
		if op == isa.OpLui {
			rd, err := reg(0)
			if err != nil {
				return err
			}
			v, err := imm(1)
			if err != nil {
				return err
			}
			return emit(isa.Instruction{Op: op, Rd: rd, Imm: v})
		}
		if op.IsLoad() {
			rd, err := regIn(0, op.DestFile())
			if err != nil {
				return err
			}
			off, base, err := parseMemOperand(it.args, 1, it.line)
			if err != nil {
				return err
			}
			return emit(isa.Instruction{Op: op, Rd: rd, Rs1: base, Imm: off})
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		v, err := imm(2)
		if err != nil {
			return err
		}
		return emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Imm: v})
	case isa.FormatS:
		_, rs2File := op.SourceFiles()
		rs2, err := regIn(0, rs2File)
		if err != nil {
			return err
		}
		off, base, err := parseMemOperand(it.args, 1, it.line)
		if err != nil {
			return err
		}
		return emit(isa.Instruction{Op: op, Rs1: base, Rs2: rs2, Imm: off})
	case isa.FormatB:
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		off, err := branchOff(2, it.addr)
		if err != nil {
			return err
		}
		return emit(isa.Instruction{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	case isa.FormatJ:
		off, err := branchOff(0, it.addr)
		if err != nil {
			return err
		}
		return emit(isa.Instruction{Op: op, Imm: off})
	case isa.FormatX:
		return emit(isa.Instruction{Op: op})
	}
	return errf(it.line, "cannot assemble %q", it.mnem)
}
