package reese

// SeqNorm maps an external (LSQ) sequence reference to a normalized
// comparable value; pipeline convergence passes each machine's own
// LSQ.NormSeq.
type SeqNorm func(uint64) uint64

func relTime(v, now uint64) uint64 {
	if v <= now {
		return 0
	}
	return v - now
}

// StateConverged reports whether two R-stream Queues behave identically
// from here on, under the same normalization rules as ruu.Converged:
// queue order is compared relative to each queue's head, completion
// times relative to each machine's current cycle, and statistics are
// excluded. Resident entries' program sequence numbers are excluded too
// — a resident entry's Seq has no further behavioral use (its skip
// decision was taken at enqueue); callers guard the partial-re-execution
// case where future enqueues make absolute sequence numbers matter.
func (q *Queue) StateConverged(o *Queue, nowQ, nowO uint64, lsqQ, lsqO SeqNorm) bool {
	if q.size != o.size || q.highWater != o.highWater || q.every != o.every || q.reso != o.reso {
		return false
	}
	if q.Len() != o.Len() {
		return false
	}
	for i := uint64(0); i < uint64(q.Len()); i++ {
		ea := &q.slots[(q.headSeq+i)%q.size]
		eb := &o.slots[(o.headSeq+i)%o.size]
		if ea.Trace != eb.Trace {
			return false
		}
		if ea.ResultP != eb.ResultP || ea.NextPCP != eb.NextPCP ||
			ea.AddrP != eb.AddrP || ea.StoreValueP != eb.StoreValueP {
			return false
		}
		if ea.FaultBit != eb.FaultBit {
			return false
		}
		if lsqQ(ea.LSQSeq) != lsqO(eb.LSQSeq) {
			return false
		}
		if ea.Dispatched != eb.Dispatched || ea.Issued != eb.Issued || ea.Done != eb.Done ||
			ea.Verified != eb.Verified || ea.Mismatch != eb.Mismatch || ea.Skipped != eb.Skipped {
			return false
		}
		if relTime(ea.DoneAt, nowQ) != relTime(eb.DoneAt, nowO) {
			return false
		}
		if ea.RFaultMask != eb.RFaultMask || ea.OperandAMask != eb.OperandAMask ||
			ea.OperandBMask != eb.OperandBMask || ea.CompIgnore != eb.CompIgnore {
			return false
		}
	}
	return true
}

// Every returns the partial-re-execution stride (1 = every instruction
// is re-executed).
func (q *Queue) Every() int { return q.every }

// ExtrapolateStats advances the per-cycle counters as if the machine
// repeated its last cycle n more times: prev is the counter snapshot
// one cycle ago, and each counter grows by n times its last-cycle
// delta. Used by the hang fast-forward, where the repeated cycle's
// deltas are provably constant.
func (q *Queue) ExtrapolateStats(prev Stats, n uint64) {
	q.stats.Enqueued += (q.stats.Enqueued - prev.Enqueued) * n
	q.stats.Reexecuted += (q.stats.Reexecuted - prev.Reexecuted) * n
	q.stats.Verified += (q.stats.Verified - prev.Verified) * n
	q.stats.Mismatches += (q.stats.Mismatches - prev.Mismatches) * n
	q.stats.Skipped += (q.stats.Skipped - prev.Skipped) * n
	q.stats.FullStalls += (q.stats.FullStalls - prev.FullStalls) * n
	q.stats.PriorityCycles += (q.stats.PriorityCycles - prev.PriorityCycles) * n
}
