package isa

import "math"

// Floating-point extension: single-precision operations over a separate
// 32-entry FP register file, mirroring SimpleScalar's PISA FP subset.
// The REESE paper's Table 1 provisions FP functional units ("same for
// FP" as the integer complement) even though its evaluation runs only
// integer benchmarks; this extension gives the machine those datapaths.
//
// FP values travel through the simulator as IEEE-754 bit patterns in
// uint32, so traces, the comparator, and fault injection treat them
// exactly like integer results. All operations are deterministic.

// RegFile identifies which register file an operand lives in.
type RegFile uint8

// Register files.
const (
	FileInt RegFile = iota
	FileFP
)

func (f RegFile) String() string {
	if f == FileFP {
		return "fp"
	}
	return "int"
}

// FPRegName returns the assembler name of FP register r ("f0".."f31").
func FPRegName(r Reg) string {
	return "f" + itoa(uint8(r))
}

func itoa(v uint8) string {
	if v >= 10 {
		return string([]byte{'0' + v/10, '0' + v%10})
	}
	return string([]byte{'0' + v})
}

// EvalFP computes the result of an FP operation on IEEE-754 bit
// patterns. Comparisons return 0 or 1 (destined for an integer
// register); conversions follow Go's float32 semantics, which are IEEE
// and deterministic.
func EvalFP(op Op, a, b uint32) uint32 {
	fa := math.Float32frombits(a)
	fb := math.Float32frombits(b)
	switch op {
	case OpFadd:
		return math.Float32bits(fa + fb)
	case OpFsub:
		return math.Float32bits(fa - fb)
	case OpFmul:
		return math.Float32bits(fa * fb)
	case OpFdiv:
		return math.Float32bits(fa / fb)
	case OpFneg:
		return a ^ 0x8000_0000
	case OpFabs:
		return a &^ 0x8000_0000
	case OpFmov, OpMtf, OpMff:
		return a
	case OpFcvtSW:
		// int32 -> float32
		return math.Float32bits(float32(int32(a)))
	case OpFcvtWS:
		// float32 -> int32 (truncating; NaN and out-of-range saturate
		// like MIPS: to max magnitude)
		switch {
		case fa != fa: // NaN
			return 0x7fffffff
		case fa >= float32(math.MaxInt32):
			return 0x7fffffff
		case fa <= float32(math.MinInt32):
			return 0x80000000
		default:
			return uint32(int32(fa))
		}
	case OpFeq:
		if fa == fb {
			return 1
		}
		return 0
	case OpFlt:
		if fa < fb {
			return 1
		}
		return 0
	case OpFle:
		if fa <= fb {
			return 1
		}
		return 0
	}
	return 0
}

// IsFP reports whether op belongs to the floating-point extension.
func (op Op) IsFP() bool { return op.flags()&flagFP != 0 }

// isFPSlow is the switch-based classification opFlags is derived from;
// kept for the init-time table build and cross-checked in tests.
func isFPSlow(op Op) bool {
	switch op {
	case OpFadd, OpFsub, OpFmul, OpFdiv, OpFneg, OpFabs, OpFmov,
		OpFcvtSW, OpFcvtWS, OpFeq, OpFlt, OpFle,
		OpLwf, OpSwf, OpMtf, OpMff:
		return true
	}
	return false
}

// SourceFiles returns which register file each source operand of op
// reads from.
func (op Op) SourceFiles() (rs1 RegFile, rs2 RegFile) {
	if op >= numOps {
		return FileInt, FileInt
	}
	info := &opTable[op]
	return info.rs1File, info.rs2File
}

// DestFile returns which register file op's destination lives in
// (meaningless when op writes no register).
func (op Op) DestFile() RegFile {
	if op >= numOps {
		return FileInt
	}
	return opTable[op].rdFile
}
