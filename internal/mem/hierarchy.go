package mem

import "fmt"

// HierarchyConfig assembles the full memory system the paper's Table 1
// describes: split L1 instruction/data caches in front of a shared L2,
// instruction and data TLBs, and main memory.
type HierarchyConfig struct {
	L1I, L1D, L2 CacheConfig
	ITLB, DTLB   TLBConfig
	// MemLatency is main-memory access time in cycles.
	MemLatency int
}

// Hierarchy is an instantiated memory system.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	ITLB, DTLB   *TLB
	Mem          *MainMemory
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if cfg.MemLatency < 1 {
		return nil, fmt.Errorf("mem: main-memory latency %d < 1", cfg.MemLatency)
	}
	h := &Hierarchy{Mem: NewMainMemory(cfg.MemLatency)}
	var err error
	if h.L2, err = NewCache(cfg.L2, h.Mem); err != nil {
		return nil, err
	}
	if h.L1I, err = NewCache(cfg.L1I, h.L2); err != nil {
		return nil, err
	}
	if h.L1D, err = NewCache(cfg.L1D, h.L2); err != nil {
		return nil, err
	}
	if h.ITLB, err = NewTLB(cfg.ITLB); err != nil {
		return nil, err
	}
	if h.DTLB, err = NewTLB(cfg.DTLB); err != nil {
		return nil, err
	}
	return h, nil
}

// SetWordPlane attaches the architectural backing store cache data
// faults operate on to every cache level. Must be re-pointed after a
// clone (the clone copies the old plane pointer).
func (h *Hierarchy) SetWordPlane(p WordPlane) {
	h.L1I.SetWordPlane(p)
	h.L1D.SetWordPlane(p)
	h.L2.SetWordPlane(p)
}

// FaultArmed reports whether any cache level still carries fault
// residue (an armed or pending injection record).
func (h *Hierarchy) FaultArmed() bool {
	return h.L1I.FaultArmed() || h.L1D.FaultArmed() || h.L2.FaultArmed()
}

// FetchLatency returns the cycles to fetch the instruction block at addr
// (I-TLB plus I-cache).
func (h *Hierarchy) FetchLatency(addr uint32) int {
	return h.ITLB.Translate(addr) + h.L1I.Access(addr, false)
}

// DataLatency returns the cycles for a data access at addr (D-TLB plus
// D-cache).
func (h *Hierarchy) DataLatency(addr uint32, isWrite bool) int {
	return h.DTLB.Translate(addr) + h.L1D.Access(addr, isWrite)
}
