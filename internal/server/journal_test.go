package server

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustAppend(t *testing.T, jl *journal, rec journalRecord) {
	t.Helper()
	if err := jl.append(rec); err != nil {
		t.Fatal(err)
	}
}

// TestJournalReplayStates walks one of each lifecycle through the
// journal and checks the replayed final states.
func TestJournalReplayStates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	jl, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	req := json.RawMessage(`{"workload":"li","insts":5000}`)
	sub := func(id string) journalRecord {
		return journalRecord{T: recSubmit, Job: id, Kind: "run", Key: "k-" + id, Req: req, TimeoutMS: 60000}
	}
	mustAppend(t, jl, sub("j-000001"))
	mustAppend(t, jl, journalRecord{T: recStart, Job: "j-000001", Attempt: 1})
	mustAppend(t, jl, journalRecord{T: recDone, Job: "j-000001", Attempt: 1})
	mustAppend(t, jl, sub("j-000002"))
	mustAppend(t, jl, journalRecord{T: recStart, Job: "j-000002", Attempt: 1})
	mustAppend(t, jl, journalRecord{T: recRetry, Job: "j-000002", Attempt: 1, Cause: "panic: chaos"})
	mustAppend(t, jl, sub("j-000003"))
	mustAppend(t, jl, sub("j-000004"))
	mustAppend(t, jl, journalRecord{T: recStart, Job: "j-000004", Attempt: 1})
	mustAppend(t, jl, journalRecord{T: recFail, Job: "j-000004", Attempt: 3, Cause: "boom"})
	mustAppend(t, jl, sub("j-000005"))
	mustAppend(t, jl, journalRecord{T: recCancel, Job: "j-000005", Cause: "client gone"})
	jl.close()

	jobs, maxID, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if maxID != 5 {
		t.Errorf("maxID = %d, want 5", maxID)
	}
	if len(jobs) != 5 {
		t.Fatalf("replayed %d jobs, want 5", len(jobs))
	}
	want := []struct {
		state    JobState
		attempts int
		cause    string
	}{
		{StateDone, 1, ""},
		{StateRetrying, 1, "panic: chaos"},
		{StateQueued, 0, ""},
		{StateFailed, 3, "boom"},
		{StateCanceled, 0, "client gone"},
	}
	for i, w := range want {
		j := jobs[i]
		if j.State != w.state || j.Attempts != w.attempts || j.Cause != w.cause {
			t.Errorf("job %s: state %q attempts %d cause %q, want %q/%d/%q",
				j.ID, j.State, j.Attempts, j.Cause, w.state, w.attempts, w.cause)
		}
		if j.Kind != "run" || j.Timeout != time.Minute || !bytes.Equal(j.Req, req) {
			t.Errorf("job %s lost submit fields: %+v", j.ID, j)
		}
	}
}

// TestJournalTornTail: a crash mid-append leaves a torn final line;
// replay keeps everything before it.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	good := `{"t":"submit","job":"j-000001","kind":"run","key":"k","req":{"workload":"li"},"timeout_ms":1000}` + "\n" +
		`{"t":"start","job":"j-000001","attempt":1}` + "\n"
	for _, tail := range []string{
		`{"t":"done","job":"j-0000`, // torn mid-record
		"\x00\xff\xfegarbage",       // binary garbage
		`{"t":"done"}` + "\n",       // parseable but missing job ID
	} {
		if err := os.WriteFile(path, []byte(good+tail), 0o644); err != nil {
			t.Fatal(err)
		}
		jobs, maxID, err := replayJournal(path)
		if err != nil {
			t.Fatalf("tail %q: %v", tail, err)
		}
		if len(jobs) != 1 || jobs[0].State != StateRunning || maxID != 1 {
			t.Errorf("tail %q: jobs %+v maxID %d, want 1 running job", tail, jobs, maxID)
		}
	}
}

// TestJournalKillFreezesDisk: after kill(), appends vanish — the
// on-disk journal keeps its crash-time contents.
func TestJournalKillFreezesDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	jl, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, jl, journalRecord{T: recSubmit, Job: "j-000001", Kind: "run", Req: json.RawMessage(`{}`)})
	jl.kill()
	mustAppend(t, jl, journalRecord{T: recDone, Job: "j-000001"}) // must vanish
	if err := jl.compact(nil); err != nil {                       // must be a no-op too
		t.Fatal(err)
	}
	jl.close()

	jobs, _, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != StateQueued {
		t.Fatalf("after kill, replay = %+v, want the submit only", jobs)
	}
}

// TestJournalCompact: compaction rewrites the file down to the live
// submits and the handle stays appendable.
func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	jl, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, jl, journalRecord{T: recSubmit, Job: "j-000001", Kind: "run", Req: json.RawMessage(`{}`)})
	mustAppend(t, jl, journalRecord{T: recDone, Job: "j-000001"})
	mustAppend(t, jl, journalRecord{T: recSubmit, Job: "j-000002", Kind: "figure", Req: json.RawMessage(`{"figure":"2"}`)})
	live := []journalRecord{{T: recSubmit, Job: "j-000002", Kind: "figure", Req: json.RawMessage(`{"figure":"2"}`)}}
	if err := jl.compact(live); err != nil {
		t.Fatal(err)
	}
	// The handle must still append (post-compaction transitions).
	mustAppend(t, jl, journalRecord{T: recStart, Job: "j-000002", Attempt: 1})
	jl.close()

	jobs, maxID, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j-000002" || jobs[0].State != StateRunning {
		t.Fatalf("after compact, replay = %+v, want j-000002 running", jobs)
	}
	if maxID != 2 {
		t.Errorf("maxID = %d, want 2", maxID)
	}
}

// FuzzReplayJournal: no input — valid, torn, hostile — may panic the
// replayer or produce a job without an ID; the prefix before the first
// bad line must survive.
func FuzzReplayJournal(f *testing.F) {
	f.Add([]byte(`{"t":"submit","job":"j-000001","kind":"run","key":"k","req":{"workload":"li"},"timeout_ms":1000}` + "\n"))
	f.Add([]byte(`{"t":"submit","job":"j-000001","kind":"run","req":{}}` + "\n" + `{"t":"done","job":"j-0`))
	f.Add([]byte("\x00\x01\x02"))
	f.Add([]byte(""))
	f.Add([]byte(`{"t":"cancel","job":"j-000009"}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		jobs, _, err := replayJournal(path)
		if err != nil {
			t.Fatalf("replay must tolerate any content, got %v", err)
		}
		for _, j := range jobs {
			if j.ID == "" || j.Kind == "" || len(j.Req) == 0 {
				t.Fatalf("replayed job missing required fields: %+v", j)
			}
		}
	})
}
