; gcd.s — Euclid's algorithm via subtraction and via remainder,
; cross-checked. Emits the gcd if both agree, 0 otherwise.
main:
	li r1, 1071
	li r2, 462
	; remainder version
	add r3, r1, r0
	add r4, r2, r0
rem_loop:
	beq r4, r0, rem_done
	remu r5, r3, r4
	add r3, r4, r0
	add r4, r5, r0
	j rem_loop
rem_done:
	; subtraction version
	add r6, r1, r0
	add r7, r2, r0
sub_loop:
	beq r6, r7, sub_done
	bltu r6, r7, swap
	sub r6, r6, r7
	j sub_loop
swap:
	sub r7, r7, r6
	j sub_loop
sub_done:
	bne r3, r6, mismatch
	out r3
	halt
mismatch:
	out r0
	halt
