package harness

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/workload"
)

// TestForkFromCheckpointMatchesScratchRun is the core soundness
// property of checkpoint/fork replay: an uninjected machine forked from
// any checkpoint and run to completion must finish in exactly the state
// the golden from-scratch run finished in — same cycle count, same
// commit and oracle digests, same stall attribution.
func TestForkFromCheckpointMatchesScratchRun(t *testing.T) {
	for _, cfg := range []config.Machine{config.Starting().WithReese(), config.Starting()} {
		spec, _ := CampaignSpec{
			Workload: "li",
			Machine:  cfg,
			Seed:     1,
		}.withDefaults()
		wspec, ok := workload.ByName(spec.Workload)
		if !ok {
			t.Fatalf("unknown workload %q", spec.Workload)
		}
		b, err := bundleForSpec(spec, wspec)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.checkpoints) < 3 {
			t.Fatalf("golden run produced %d checkpoints, want >= 3", len(b.checkpoints))
		}

		// Checkpoint 0 (the pre-run state), the last one, and a few
		// seeded-random interior picks.
		rng := rand.New(rand.NewSource(0xC0FFEE))
		picks := []int{0, len(b.checkpoints) - 1}
		for i := 0; i < 3; i++ {
			picks = append(picks, 1+rng.Intn(len(b.checkpoints)-1))
		}

		for _, i := range picks {
			ck := b.checkpoints[i]
			w := &campaignWorker{}
			if err := w.adopt(b.prog, ck.Mem); err != nil {
				t.Fatal(err)
			}
			cpu, err := ck.Fork(w.mem, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cpu.Run(b.budget)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != b.finalRes.Cycles || res.Committed != b.finalRes.Committed {
				t.Errorf("%s fork@%d (commit %d): finished at cycle %d / %d insts, golden %d / %d",
					cfg.Name, i, ck.Committed, res.Cycles, res.Committed, b.finalRes.Cycles, b.finalRes.Committed)
			}
			if got := cpu.CommitDigest(); got != b.finalCommit {
				t.Errorf("%s fork@%d: commit digest diverged from golden", cfg.Name, i)
			}
			if got := cpu.OracleDigest(); got != b.finalOracle {
				t.Errorf("%s fork@%d: oracle digest diverged from golden", cfg.Name, i)
			}
			if !reflect.DeepEqual(res.Stalls, b.finalRes.Stalls) {
				t.Errorf("%s fork@%d: stall ledger diverged from golden:\nfork   %+v\ngolden %+v",
					cfg.Name, i, res.Stalls, b.finalRes.Stalls)
			}
		}
	}
}

// TestCampaignInvariantToCheckpointInterval pins the engine's headline
// guarantee: per-trial results are a pure function of the campaign spec
// and seed, not of the snapshot schedule. An interval larger than the
// workload degenerates to full-prefix simulation with no splice
// opportunities, so equality across these runs is fork+splice vs.
// from-scratch equivalence for every trial — exercised across every
// fault structure the machine supports, pipeline latches and memory-
// hierarchy targets alike.
func TestCampaignInvariantToCheckpointInterval(t *testing.T) {
	base := CampaignSpec{
		Workload:   "gcc", // hosts victims for every structure (loads, stores, branches)
		Machine:    config.Starting().WithReese(),
		Injections: 120,
		Seed:       0xBEEF,
		Structures: fault.Structures(true),
	}
	render := func(interval uint64) (string, string, *CampaignReport) {
		spec := base
		spec.CheckpointInterval = interval
		rep, err := Campaign(spec, Options{Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), rep.Table(), rep
	}
	refJSONL, refTable, refRep := render(0) // DefaultCheckpointInterval
	// The run must actually sample the memory hierarchy, or the
	// invariance below says nothing about mem-fault replay.
	memInjected := uint64(0)
	for _, sc := range refRep.Structures {
		if st, ok := fault.ParseStruct(sc.Structure); ok && st.InMemHierarchy() {
			memInjected += sc.Injected
		}
	}
	if memInjected == 0 {
		t.Fatal("campaign sampled no memory-hierarchy structures")
	}
	for _, interval := range []uint64{64, 1 << 20} {
		jsonl, table, _ := render(interval)
		if jsonl != refJSONL {
			t.Errorf("per-trial JSONL differs between interval %d and the default", interval)
		}
		if table != refTable {
			t.Errorf("report table differs between interval %d and the default", interval)
		}
	}
}

// TestMemFaultTrialsInvariantToCheckpointInterval narrows interval
// invariance to the memory-hierarchy structures only, with a small
// interval in the mix so trials fork close to their injection point.
// That forces armed and pending fault residue — in particular the
// lost-write-back record with its pre-store block snapshot — to ride
// through checkpoint restore (mem/clone.go deep-copies frec.snap) and
// to block golden splicing until it settles; any shallow-copy or
// settle-ordering bug shows up as a per-trial diff between schedules.
func TestMemFaultTrialsInvariantToCheckpointInterval(t *testing.T) {
	base := CampaignSpec{
		Workload:   "gcc",
		Machine:    config.Starting().WithReese(),
		Injections: 60,
		Seed:       0xD00D,
		Structures: []fault.Struct{
			fault.StructMemWord, fault.StructL1DTag, fault.StructL1DDirty,
			fault.StructL1DData, fault.StructL2Line, fault.StructDTLB,
		},
	}
	render := func(interval uint64) (string, *CampaignReport) {
		spec := base
		spec.CheckpointInterval = interval
		rep, err := Campaign(spec, Options{Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), rep
	}
	refJSONL, refRep := render(1 << 20) // no checkpoints: pure from-scratch
	for _, sc := range refRep.Structures {
		if sc.Injected == 0 {
			t.Errorf("structure %s drew no trials", sc.Structure)
		}
	}
	// Lost write-backs must actually fire somewhere, or the deep-clone
	// path under test never carries a non-empty snapshot.
	for _, sc := range refRep.Structures {
		if sc.Structure == fault.StructL1DDirty.String() && sc.Fired == 0 {
			t.Error("no l1d-dirty trial fired; lost-write-back replay untested")
		}
	}
	for _, interval := range []uint64{16, 64, 0} {
		jsonl, _ := render(interval)
		if jsonl != refJSONL {
			t.Errorf("mem-fault JSONL differs between interval %d and from-scratch", interval)
		}
	}
}
