package pipeline

// Checkpoint/fork support for fault campaigns: a golden instrumented
// run takes periodic full-machine snapshots, and each injection trial
// forks from the nearest safe checkpoint instead of re-simulating the
// prefix. Architectural memory travels separately as a copy-on-write
// page image (internal/mem.PageImage) so snapshots share clean pages;
// everything else — pipeline, oracle scalars, predictors, caches,
// queues — is deep-copied here.

import (
	"fmt"

	"reese/internal/bpred"
	"reese/internal/fault"
	"reese/internal/mem"
	"reese/internal/program"
)

// Checkpoint is a resumable machine state captured at a commit-count
// boundary of the golden run.
type Checkpoint struct {
	// Committed is the exact architectural position (retired
	// instruction count) of the snapshot.
	Committed uint64
	// Cycle is the simulated cycle the snapshot was taken at.
	Cycle uint64
	// ICount is the oracle's instruction count — the oracle runs ahead
	// of commit, and an architectural-site fault at sequence s has not
	// fired yet only if ICount <= s.
	ICount uint64
	// HookHorizon is one past the highest sequence number the machine
	// had presented to the writeback/RSQ injection sites. A latch-site
	// fault at sequence s has not fired yet only if HookHorizon <= s.
	HookHorizon uint64
	// StoreCount is the committed-store count at the boundary (the
	// suffix fold of a spliced trial's store digest starts here).
	StoreCount uint64
	// Mem is the architectural memory image at the boundary (pages
	// shared copy-on-write with neighbouring checkpoints).
	Mem *mem.PageImage

	cpu *CPU // deep clone; its oracle is detached from any live memory
}

// Snapshot captures the machine into a new Checkpoint. img must be the
// architectural memory image at this instant (the caller owns dirty
// tracking and page sharing); the embedded clone's oracle is detached
// from live memory until Fork rewires it.
func (c *CPU) Snapshot(img *mem.PageImage) *Checkpoint {
	return &Checkpoint{
		Committed:   c.committed,
		Cycle:       c.cycle,
		ICount:      c.oracle.InstCount(),
		HookHorizon: c.hookHorizon,
		StoreCount:  c.storeCount,
		Mem:         img,
		cpu:         c.cloneInto(nil, nil),
	}
}

// ForkEligible reports whether a fault targeting sequence number seq
// can be injected into a run forked from this checkpoint: every
// injection site the machine fired before the snapshot must have been
// below seq, so a fresh (unfired) injector behaves exactly as it would
// have in a full run.
func (ck *Checkpoint) ForkEligible(seq uint64) bool {
	return ck.ICount <= seq && ck.HookHorizon <= seq
}

// StateConverged reports whether a live machine has reconverged with
// the golden state this checkpoint captured (see CPU.ConvergedWith).
// Memory is excluded: the campaign compares the live machine's memory
// page-wise against ck.Mem separately.
func (ck *Checkpoint) StateConverged(c *CPU) bool { return c.ConvergedWith(ck.cpu) }

// StateConvergedMasked is StateConverged with the branch-predictor
// comparison bounded to the pattern-table entries the golden suffix
// after this checkpoint is known to consult (see bpred.ReadSet and the
// soundness argument in bpred/readset.go). A nil set, or a predictor
// that cannot log reads, compares exactly.
func (ck *Checkpoint) StateConvergedMasked(c *CPU, predReads *bpred.ReadSet) bool {
	return c.convergedAt(ck.cpu, 0, predReads)
}

// PredReadEntries returns the branch predictor's pattern-table size —
// what a bpred.ReadSet must cover — or 0 when the predictor cannot log
// reads (no masked comparison available).
func (c *CPU) PredReadEntries() int {
	if rl, ok := c.pred.(bpred.ReadLogger); ok {
		return rl.NumEntries()
	}
	return 0
}

// SetPredReadLog installs the read-set the branch predictor marks
// consulted pattern-table entries in (nil stops logging). The golden
// instrumented run swaps per-interval sets at each checkpoint boundary
// to build the suffix masks StateConvergedMasked consumes. A no-op for
// predictors that cannot log reads.
func (c *CPU) SetPredReadLog(rs *bpred.ReadSet) {
	if rl, ok := c.pred.(bpred.ReadLogger); ok {
		rl.SetReadLog(rs)
	}
}

// Fork instantiates a runnable machine from the checkpoint. memory must
// already hold the checkpoint's architectural image (the caller
// restores it from ck.Mem — typically diffing against whatever the
// reused worker memory last held); injector supplies the trial's fault
// (nil for none). dst, when non-nil, is recycled so per-trial forking
// reuses one worker machine's allocations.
func (ck *Checkpoint) Fork(memory *program.Memory, injector fault.Injector, dst *CPU) (*CPU, error) {
	if memory == nil {
		return nil, fmt.Errorf("pipeline: Fork needs a restored memory image")
	}
	cpu := ck.cpu.cloneInto(dst, memory)
	cpu.injector = injector
	if injector == nil {
		cpu.injector = fault.None{}
	}
	cpu.sites = nil
	if s, ok := cpu.injector.(fault.SiteInjector); ok {
		cpu.sites = s
	}
	cpu.memSites = nil
	if m, ok := cpu.injector.(fault.MemSiteInjector); ok {
		cpu.memSites = m
	}
	return cpu, nil
}

// SetBoundaryHook installs commit-count marks (strictly ascending) and
// a callback the cycle loop invokes once whenever committed first
// reaches the next mark. Returning true stops the run (RunContext
// returns the current state's result). Call before Run.
func (c *CPU) SetBoundaryHook(marks []uint64, fn func(*CPU) bool) {
	c.hookMarks = marks
	c.hookIdx = 0
	c.hookFn = fn
}

// SetHangFastForward enables the fixed-point hang accelerator
// (converge.go): commit droughts are probed at power-of-two depths and,
// once the machine provably repeats the same cycle forever, the run
// jumps straight to the watchdog threshold. Off by default.
func (c *CPU) SetHangFastForward(on bool) { c.hangFF = on }

// OracleMemory exposes the oracle's architectural memory — the single
// data-memory image of the machine — so campaign code can snapshot and
// restore it around forks.
func (c *CPU) OracleMemory() *program.Memory { return c.oracle.Mem() }

// cloneInto deep-copies the whole machine into dst (allocating when dst
// is nil), reusing dst's component allocations where possible. memory
// becomes the clone's architectural memory (nil leaves the cloned
// oracle detached — only valid for stored snapshots that Fork will
// rewire). Observability sinks (trace writer, flight recorder, progress
// counter) and hook state deliberately do not survive the copy.
func (c *CPU) cloneInto(dst *CPU, memory *program.Memory) *CPU {
	if dst == nil {
		dst = &CPU{}
	}
	oracle := dst.oracle
	hier := dst.hier
	pool := dst.pool
	r := dst.ruu
	lq := dst.lsq
	rq := dst.rsq
	fq := dst.fetchQ
	rpq := dst.replayQ
	rps := dst.replayScratch

	*dst = *c
	dst.oracle = c.oracle.CloneInto(oracle, memory)
	dst.hier = c.hier.CloneInto(hier)
	// The clone copied the source's word-plane pointer; re-point cache
	// data faults at the clone's own architectural memory.
	if memory != nil {
		dst.hier.SetWordPlane(memory)
	} else {
		dst.hier.SetWordPlane(nil)
	}
	dst.pool = c.pool.CloneInto(pool)
	dst.pred = c.pred.Clone()
	dst.btb = c.btb.Clone()
	dst.ras = c.ras.Clone()
	dst.ruu = c.ruu.CloneInto(r)
	dst.lsq = c.lsq.CloneInto(lq)
	dst.rsq = nil
	if c.rsq != nil {
		dst.rsq = c.rsq.CloneInto(rq)
	}
	dst.fetchQ = append(fq[:0], c.fetchQ...)
	dst.replayQ = append(rpq[:0], c.replayQ...)
	// replayScratch contents are dead outside recover(); keep only the
	// backing array for reuse.
	dst.replayScratch = rps[:0]
	dst.detectLat = c.detectLat.Clone()

	dst.traceW = nil
	dst.recorder = nil
	dst.progress = nil
	dst.progressSeen = 0
	dst.hookMarks = nil
	dst.hookIdx = 0
	dst.hookFn = nil
	dst.hangFF = false
	dst.ffScratch = nil
	dst.ffProbeAge = 0
	dst.commitWatch = nil
	dst.recFreeze = 0
	return dst
}

// probeSnapshot captures the machine for a hang fixed-point check,
// recycling the ffScratch clone. The probe shares the live memory
// image: it is read-only, and a wedged machine cannot mutate memory
// anyway (stores drain only at retire, and the oracle — the only
// writer — is not stepping, which the icount comparison enforces).
func (c *CPU) probeSnapshot() *CPU {
	c.ffScratch = c.cloneInto(c.ffScratch, c.oracle.Mem())
	return c.ffScratch
}
