// Quickstart: run one benchmark on the baseline machine and on REESE,
// and see the cost of full time-redundant execution.
package main

import (
	"fmt"
	"log"

	"reese"
)

func main() {
	// The paper's Table 1 starting configuration (the baseline).
	base := reese.StartingConfig()

	// The same machine with REESE enabled: every instruction is
	// re-executed through the R-stream Queue and compared before commit.
	protected := reese.StartingConfig().WithReese()

	// And REESE with two spare integer ALUs — the paper's proposed fix
	// for the slowdown.
	spared := reese.StartingConfig().WithReese().WithSpares(2, 0)

	prog, err := reese.Workload("gcc", 0)
	if err != nil {
		log.Fatal(err)
	}

	for _, cfg := range []reese.Config{base, protected, spared} {
		// A fresh program per run: a CPU consumes its oracle.
		prog, err = reese.Workload("gcc", 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := reese.Run(cfg, prog, nil, 200_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s IPC %.3f  (%d cycles for %d instructions)\n",
			res.Config, res.IPC, res.Cycles, res.Committed)
		if res.Reese != nil {
			fmt.Printf("%-34s every instruction executed twice: %d re-executions, %d verified\n",
				"", res.Reese.Reexecuted, res.Reese.Verified)
		}
	}
}
