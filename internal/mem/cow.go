package mem

// Copy-on-write page images for machine-state snapshots.
//
// A fault campaign takes many snapshots of one golden run's memory; a
// naive snapshot copies the whole 8 MiB image each time, even though
// consecutive checkpoints differ by a handful of stores. PageImage
// shares unchanged pages between snapshots instead: the snapshot taker
// tracks which pages were written since the previous snapshot and only
// those are copied, so a chain of N checkpoints costs one full image
// plus the dirtied pages — not N full images.

// Page granularity for copy-on-write snapshots.
const (
	// PageShift is log2 of the COW page size.
	PageShift = 12
	// PageSize is the COW page size in bytes (4 KiB).
	PageSize = 1 << PageShift
)

// NumPages returns how many COW pages cover an image of size bytes.
func NumPages(size int) int { return (size + PageSize - 1) / PageSize }

// PageImage is an immutable page-granular snapshot of a flat byte
// image. Pages are shared between successive snapshots of the same
// image; Materialize reassembles a private flat copy for a fork.
type PageImage struct {
	size  int
	pages [][]byte
}

// SnapshotPages captures image as a PageImage. dirty flags (one per
// page, from NumPages) mark pages written since prev was taken; those
// are copied fresh while clean pages are shared with prev. A nil prev
// (or a nil dirty, or a size change) copies every page — the chain's
// base snapshot. The caller is responsible for clearing the dirty
// flags afterwards and for not mutating prev's pages.
func SnapshotPages(image []byte, dirty []bool, prev *PageImage) *PageImage {
	n := NumPages(len(image))
	img := &PageImage{size: len(image), pages: make([][]byte, n)}
	full := prev == nil || dirty == nil || prev.size != len(image) || len(dirty) != n
	for i := 0; i < n; i++ {
		if !full && !dirty[i] {
			img.pages[i] = prev.pages[i]
			continue
		}
		lo := i * PageSize
		hi := lo + PageSize
		if hi > len(image) {
			hi = len(image)
		}
		img.pages[i] = append([]byte(nil), image[lo:hi]...)
	}
	return img
}

// Size returns the byte size of the imaged memory.
func (p *PageImage) Size() int { return p.size }

// NumPages returns the number of pages in the image.
func (p *PageImage) NumPages() int { return len(p.pages) }

// PageAt returns the i-th page's bytes. The slice is shared snapshot
// state: callers must treat it as read-only. Page identity (the address
// of the first byte) tells whether two snapshots share the page.
func (p *PageImage) PageAt(i int) []byte { return p.pages[i] }

// Materialize reassembles the snapshot into a fresh flat byte slice
// that the caller owns.
func (p *PageImage) Materialize() []byte {
	out := make([]byte, p.size)
	for i, pg := range p.pages {
		copy(out[i*PageSize:], pg)
	}
	return out
}

// SharedWith counts the pages this snapshot shares (by identity) with
// another — the quantity the COW scheme exists to maximise; tests use
// it to prove snapshots are not full copies.
func (p *PageImage) SharedWith(o *PageImage) int {
	if o == nil || len(p.pages) != len(o.pages) {
		return 0
	}
	n := 0
	for i := range p.pages {
		if len(p.pages[i]) > 0 && &p.pages[i][0] == &o.pages[i][0] {
			n++
		}
	}
	return n
}
