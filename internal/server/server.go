// Package server turns the REESE reproduction into a long-lived HTTP
// service: single simulations (POST /v1/run), paper figures
// (POST /v1/figure), and fault campaigns (POST /v1/faults) become
// asynchronous jobs on a bounded queue drained by a fixed worker pool,
// with a content-addressed LRU result cache (sound because simulation
// is deterministic), Prometheus metrics at GET /metrics, a health probe
// at GET /healthz, structured request logging via log/slog, and
// graceful drain for SIGTERM handling in cmd/reese-serve.
//
// Job lifecycle: a submit returns 202 with a job ID; GET /v1/jobs/{id}
// polls it; DELETE cancels it. A ?wait=30s query on submit or poll
// blocks until the job finishes (or the wait expires, returning the
// in-flight status). A waiting submit is interactive: if its client
// disconnects, the job's context — threaded through harness into the
// pipeline cycle loop — is cancelled and the simulation stops burning
// CPU within a few thousand cycles.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"time"

	"reese/internal/fault"
	"reese/internal/harness"
	"reese/internal/pipeline"
	"reese/internal/workload"
)

// Config tunes the serving layer; zero values select the defaults.
type Config struct {
	// Workers is the number of jobs simulated concurrently (default 2).
	// Each job's internal grid parallelism is GOMAXPROCS/Workers, so the
	// machine is never oversubscribed — the same discipline as harness's
	// shared pool.
	Workers int
	// QueueDepth bounds jobs waiting behind the workers (default 64);
	// submits beyond it fail with 503.
	QueueDepth int
	// CacheEntries bounds the result cache (default 256; 0 keeps the
	// default, negative disables caching).
	CacheEntries int
	// MaxJobs bounds the job registry (default 4096 retained jobs).
	MaxJobs int
	// MaxWait caps any ?wait= duration (default 120s).
	MaxWait time.Duration
	// Limits bound per-request simulation work.
	Limits Limits
	// Logger receives structured request and job logs (default
	// slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 120 * time.Second
	}
	if c.Limits == (Limits{}) {
		c.Limits = DefaultLimits()
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the reese-serve HTTP service.
type Server struct {
	cfg      Config
	log      *slog.Logger
	metrics  *Metrics
	cache    *resultCache
	jobs     *jobRunner
	mux      *http.ServeMux
	rootCtx  context.Context
	stopRoot context.CancelFunc
	// gridParallel is the harness Options.Parallel each job runs with.
	gridParallel int

	httpRequests *counterFamily
	httpLatency  *histogramFamily
	started      time.Time
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	rootCtx, stopRoot := context.WithCancel(context.Background())
	m := NewMetrics()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		metrics:  m,
		cache:    newResultCache(cfg.CacheEntries, m),
		rootCtx:  rootCtx,
		stopRoot: stopRoot,
		started:  time.Now(),
		httpRequests: m.CounterFamily("reese_serve_http_requests_total",
			"HTTP requests, by route and status code.", "path", "code"),
		httpLatency: m.HistogramFamily("reese_serve_http_request_duration_seconds",
			"HTTP request latency, by route.", DefaultLatencyBounds, "path"),
	}
	s.gridParallel = runtime.GOMAXPROCS(0) / cfg.Workers
	if s.gridParallel < 1 {
		s.gridParallel = 1
	}
	s.jobs = newJobRunner(rootCtx, cfg.Workers, cfg.QueueDepth, cfg.MaxJobs, m)
	s.metrics.Gauge("reese_serve_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.instrument("/v1/run", s.handleRun))
	mux.HandleFunc("POST /v1/figure", s.instrument("/v1/figure", s.handleFigure))
	mux.HandleFunc("POST /v1/faults", s.instrument("/v1/faults", s.handleFaults))
	mux.HandleFunc("GET /v1/jobs", s.instrument("/v1/jobs", s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobCancel))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux = mux
	return s
}

// Handler returns the root handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains gracefully: intake closes (new submits get 503),
// queued and running jobs are given until ctx expires to finish, then
// any stragglers are cancelled through the root context. Always call
// it once; it is what stops the worker goroutines.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.jobs.drain(ctx)
	s.stopRoot()
	if err != nil {
		s.log.Warn("drain expired; cancelling in-flight jobs", "err", err)
		return err
	}
	return nil
}

// statusRecorder captures the response code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request logging, the per-route
// request counter, and the latency histogram.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		s.httpRequests.With(route, fmt.Sprint(rec.code)).Inc()
		s.httpLatency.With(route).Observe(elapsed.Seconds())
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path, "route", route,
			"status", rec.code, "dur_ms", elapsed.Milliseconds())
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("encode response", "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, errorResponse{Error: err.Error()})
}

// parseWait reads the ?wait= query (a Go duration, or bare seconds),
// capped at MaxWait. 0 means asynchronous.
func (s *Server) parseWait(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		var secs float64
		if _, serr := fmt.Sscanf(raw, "%g", &secs); serr != nil {
			return 0, fmt.Errorf("bad wait %q: %v", raw, err)
		}
		d = time.Duration(secs * float64(time.Second))
	}
	if d < 0 {
		return 0, fmt.Errorf("negative wait %q", raw)
	}
	if d > s.cfg.MaxWait {
		d = s.cfg.MaxWait
	}
	return d, nil
}

// parseTimeout reads the ?timeout= query bounding the job's run time.
func (s *Server) parseTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad timeout %q", raw)
	}
	return d, nil
}

// submit is the shared tail of the three POST endpoints: consult the
// cache, enqueue on miss, then either return 202 immediately or wait.
//
// Jobs always derive from the server root context (never the request's:
// a ?wait= that expires returns 202 and the job must survive the
// handler returning). Interactive cancellation is explicit instead:
// waitAndReply calls Cancel when a waiting submitter disconnects,
// because nobody is left to read the answer. Asynchronous jobs are
// bounded only by ?timeout=, DELETE, and Shutdown.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, kind, key string,
	run func(ctx context.Context) (jobOutput, error)) {

	wait, err := s.parseWait(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout, err := s.parseTimeout(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	if payload, ok := s.cache.get(key); ok {
		j := s.jobs.complete(kind, key, payload)
		s.log.Info("job served from cache", "job", j.ID, "kind", kind, "key", key[:12])
		s.writeJSON(w, http.StatusOK, j.snapshot())
		return
	}

	wrapped := func(ctx context.Context) (jobOutput, error) {
		out, err := run(ctx)
		if err == nil {
			s.cache.put(key, out.payload)
		}
		return out, err
	}
	j, err := s.jobs.submit(s.rootCtx, kind, key, timeout, wrapped)
	switch {
	case errors.Is(err, errQueueFull):
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, errDraining):
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.log.Info("job queued", "job", j.ID, "kind", kind, "key", key[:12], "wait", wait.String())
	if wait == 0 {
		s.writeJSON(w, http.StatusAccepted, j.snapshot())
		return
	}
	s.waitAndReply(w, r, j, wait, true)
}

// waitAndReply blocks until the job finishes, the wait expires (reply
// with in-flight status), or — when interactive — the client vanishes
// (cancel the job; there is nobody to reply to).
func (s *Server) waitAndReply(w http.ResponseWriter, r *http.Request, j *Job, wait time.Duration, interactive bool) {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-j.done:
		v := j.snapshot()
		code := http.StatusOK
		if v.State == StateFailed {
			code = http.StatusInternalServerError
		}
		s.writeJSON(w, code, v)
	case <-timer.C:
		s.writeJSON(w, http.StatusAccepted, j.snapshot())
	case <-r.Context().Done():
		if interactive {
			s.log.Info("client disconnected; cancelling job", "job", j.ID)
			j.Cancel()
			<-j.done
		}
	}
}

// handleRun serves POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	req, err := req.normalize(s.cfg.Limits)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := cacheKey("run", req)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.submit(w, r, "run", key, func(ctx context.Context) (jobOutput, error) {
		return runSimulation(ctx, req)
	})
}

// runSimulation executes one RunRequest — the reese-sim code path with
// a context-aware cycle loop.
func runSimulation(ctx context.Context, req RunRequest) (jobOutput, error) {
	spec, ok := workload.ByName(req.Workload)
	if !ok {
		return jobOutput{}, fmt.Errorf("unknown workload %q", req.Workload)
	}
	prog, err := spec.Build(req.Iters)
	if err != nil {
		return jobOutput{}, err
	}
	var injector fault.Injector = fault.None{}
	if req.FaultAt > 0 {
		injector = &fault.AtSeq{Seq: req.FaultAt, Bit: req.FaultBit}
	}
	cpu, err := pipeline.New(*req.Machine, prog, injector)
	if err != nil {
		return jobOutput{}, err
	}
	res, err := cpu.RunContext(ctx, req.Insts)
	if err != nil {
		return jobOutput{}, err
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return jobOutput{}, err
	}
	return jobOutput{payload: payload, insts: res.Committed}, nil
}

// handleFigure serves POST /v1/figure.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	var req FigureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	req, err := req.normalize(s.cfg.Limits)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := cacheKey("figure", req)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	parallel := s.gridParallel
	s.submit(w, r, "figure", key, func(ctx context.Context) (jobOutput, error) {
		return runFigure(ctx, req, parallel)
	})
}

// runFigure executes one FigureRequest.
func runFigure(ctx context.Context, req FigureRequest, parallel int) (jobOutput, error) {
	opt := harness.Options{Insts: req.Insts, Parallel: parallel, Ctx: ctx}
	var payload FigurePayload
	var insts uint64
	switch req.Figure {
	case "2", "3", "4", "5":
		f := map[string]func(harness.Options) (*harness.FigureResult, error){
			"2": harness.Figure2, "3": harness.Figure3, "4": harness.Figure4, "5": harness.Figure5,
		}[req.Figure]
		fig, err := f(opt)
		if err != nil {
			return jobOutput{}, err
		}
		payload = FigurePayload{Figure: fig, Table: fig.Table()}
		for _, c := range fig.Cells {
			insts += c.Result.Committed
		}
	case "6":
		rows, err := harness.Figure6(opt)
		if err != nil {
			return jobOutput{}, err
		}
		payload = FigurePayload{Rows: rows, Table: harness.Figure6Table(rows)}
		insts = req.Insts * uint64(len(rows)) * 30 // 4 sub-figures × ~30 cells, approximate
	case "7":
		points, err := harness.Figure7(opt)
		if err != nil {
			return jobOutput{}, err
		}
		payload = FigurePayload{Points: points, Table: harness.Figure7Table(points)}
		insts = req.Insts * uint64(len(points)) * 18
	default:
		return jobOutput{}, fmt.Errorf("unknown figure %q", req.Figure)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return jobOutput{}, err
	}
	return jobOutput{payload: raw, insts: insts}, nil
}

// handleFaults serves POST /v1/faults.
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	var req FaultsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	req, err := req.normalize(s.cfg.Limits)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := cacheKey("faults", req)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	parallel := s.gridParallel
	s.submit(w, r, "faults", key, func(ctx context.Context) (jobOutput, error) {
		opt := harness.Options{Insts: req.Insts, Parallel: parallel, Ctx: ctx}
		table, results, err := harness.CampaignAll(req.Interval, opt)
		if err != nil {
			return jobOutput{}, err
		}
		raw, merr := json.Marshal(FaultsPayload{Results: results, Table: table})
		if merr != nil {
			return jobOutput{}, merr
		}
		var insts uint64
		for range results {
			insts += 2 * req.Insts // clean + faulty run per campaign row
		}
		return jobOutput{payload: raw, insts: insts}, nil
	})
}

// handleJobGet serves GET /v1/jobs/{id} (?wait= to block).
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	wait, err := s.parseWait(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if wait == 0 {
		v := j.snapshot()
		code := http.StatusOK
		if !v.State.terminal() {
			code = http.StatusAccepted
		}
		s.writeJSON(w, code, v)
		return
	}
	// A poller disconnecting must NOT cancel someone else's job.
	s.waitAndReply(w, r, j, wait, false)
}

// handleJobCancel serves DELETE /v1/jobs/{id}.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	j.Cancel()
	<-j.done
	s.writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobList serves GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.jobs.list())
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.stats()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"uptime_s":     time.Since(s.started).Seconds(),
		"jobs_queued":  s.jobs.queued.Load(),
		"jobs_running": s.jobs.running.Load(),
		"cache_hits":   hits,
		"cache_misses": misses,
		"workloads":    workload.Names(),
	})
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.metrics.Render(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}
