package harness

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"reese/internal/obs"
	"reese/internal/pipeline"
)

// Regenerate goldens with:
//
//	go test ./internal/harness/ -run TestFigureJSONGolden -update-golden
//
// Only do this after an intentional wire-format change — the diff IS
// the API change reese-serve clients will see.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestFigureJSONGolden locks the wire format of the figure types the
// server and reese-sweep -json emit. The fixture is hand-built (no
// simulation) so the golden file only changes when the encoding does —
// which is exactly the event that must be deliberate: reese-serve
// clients and its result cache both depend on this shape.
func TestFigureJSONGolden(t *testing.T) {
	fig := &FigureResult{
		ID:       "Figure 2",
		Title:    "initial comparison, Table 1 starting configuration",
		Variants: []string{"Baseline", "REESE"},
		IPC: map[string]map[string]float64{
			"gcc": {"Baseline": 1.25, "REESE": 1.0},
			"go":  {"Baseline": 1.5, "REESE": 1.125},
		},
		Workloads: []string{"gcc", "go"},
		Cells: []Cell{
			{Workload: "gcc", Variant: "Baseline", Result: pipeline.Result{
				Config: "table1-starting", Workload: "gcc",
				Cycles: 80_000, Committed: 100_000, IPC: 1.25, Halted: false,
				Branches: 12_000, Mispredicts: 600, BranchAcc: 0.95,
				Stalls: obs.StallBreakdown{
					Cycles: 80_000,
					Dispatch: obs.SlotBreakdown{Width: 8, Slots: 640_000, Used: 100_000,
						Stalls: stallCounts(obs.CauseFetchEmpty, 340_000, obs.CauseDispatchRUUFull, 200_000)},
					Issue: obs.SlotBreakdown{Width: 8, Slots: 640_000, Used: 100_000,
						Stalls: stallCounts(obs.CauseIssueWait, 400_000, obs.CauseIssueNoFU, 140_000)},
					Commit: obs.SlotBreakdown{Width: 8, Slots: 640_000, Used: 100_000,
						Stalls: stallCounts(obs.CauseExecLatency, 540_000)},
				},
			}},
		},
	}
	doc := struct {
		Figure *FigureResult  `json:"figure"`
		Rows   []SummaryRow   `json:"rows"`
		Points []Figure7Point `json:"points"`
	}{
		Figure: fig,
		Rows: []SummaryRow{{
			Config: "None", BaselineIPC: 1.375, ReeseIPC: 1.0625,
			Spared2IPC: 1.25, GapPercent: 22.7, SparedGapPct: 9.1,
			BaselineStallPct: map[string]float64{"exec-latency": 84.375},
			ReeseStallPct:    map[string]float64{"exec-latency": 40.0, "recheck-pending": 44.375},
		}},
		Points: []Figure7Point{{
			Label: "RUU=64", BaselineIPC: 2.0, ReeseIPC: 1.75,
			Reese2AIPC: 1.9, GapPercent: 12.5, Gap2APct: 5.0,
		}},
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "figures.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("figure JSON encoding drifted from %s\n got:\n%s\nwant:\n%s\n(if intentional, rerun with -update-golden)",
			golden, buf.Bytes(), want)
	}
}

// stallCounts builds a per-cause count array from (cause, count) pairs.
func stallCounts(pairs ...any) [obs.NumCauses]uint64 {
	var out [obs.NumCauses]uint64
	for i := 0; i < len(pairs); i += 2 {
		out[pairs[i].(obs.StallCause)] = uint64(pairs[i+1].(int))
	}
	return out
}
