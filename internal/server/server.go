// Package server turns the REESE reproduction into a long-lived HTTP
// service: single simulations (POST /v1/run), paper figures
// (POST /v1/figure), and fault campaigns (POST /v1/faults) become
// asynchronous jobs on a bounded queue drained by a fixed worker pool,
// with a content-addressed LRU result cache (sound because simulation
// is deterministic), Prometheus metrics at GET /metrics, a health probe
// at GET /healthz, structured request logging via log/slog, and
// graceful drain for SIGTERM handling in cmd/reese-serve.
//
// Job lifecycle: a submit returns 202 with a job ID; GET /v1/jobs/{id}
// polls it; DELETE cancels it. A ?wait=30s query on submit or poll
// blocks until the job finishes (or the wait expires, returning the
// in-flight status). A waiting submit is interactive: if its client
// disconnects, the job's context — threaded through harness into the
// pipeline cycle loop — is cancelled and the simulation stops burning
// CPU within a few thousand cycles.
//
// The serving layer self-heals (see job.go for the machinery): worker
// panics are contained, attempts carry deadlines and a progress
// watchdog, transient failures retry with backoff, and — when
// Config.JournalPath is set — accepted work survives a crash through
// the write-ahead journal (journal.go) and is re-enqueued on restart.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/harness"
	"reese/internal/pipeline"
	"reese/internal/workload"
)

// Config tunes the serving layer; zero values select the defaults.
type Config struct {
	// Workers is the number of jobs simulated concurrently (default 2).
	// Each job's internal grid parallelism is GOMAXPROCS/Workers, so the
	// machine is never oversubscribed — the same discipline as harness's
	// shared pool.
	Workers int
	// QueueDepth bounds jobs waiting behind the workers (default 64);
	// submits beyond it fail with 503 + Retry-After.
	QueueDepth int
	// CacheEntries bounds the result cache (default 256; 0 keeps the
	// default, negative disables caching).
	CacheEntries int
	// MaxJobs bounds the job registry (default 4096 retained jobs).
	MaxJobs int
	// MaxWait caps any ?wait= duration (default 120s).
	MaxWait time.Duration
	// Limits bound per-request simulation work.
	Limits Limits
	// Logger receives structured request and job logs (default
	// slog.Default()).
	Logger *slog.Logger

	// JournalPath enables the crash-safe job journal: accepted submits
	// and state transitions are fsync'd there, and New replays it —
	// re-enqueueing unfinished jobs — before serving. Empty disables
	// durability (the PR-2 behavior).
	JournalPath string
	// JobTimeout bounds each attempt when the request carries no
	// ?timeout= (default 10m); MaxTimeout caps any requested value
	// (default 30m).
	JobTimeout time.Duration
	MaxTimeout time.Duration
	// MaxRetries is how many times a transient failure (panic, deadline,
	// watchdog kill) is retried before the job fails for good (default
	// 2; negative means never retry).
	MaxRetries int
	// RetryBackoff seeds the exponential backoff between attempts
	// (default 500ms), capped at RetryBackoffMax (default 15s).
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// WatchdogInterval is how often running jobs' progress heartbeats
	// are sampled (default 1s). WatchdogStall is how long an attempt may
	// go without committing a single instruction before it is killed as
	// retryable (default 60s; negative disables the watchdog).
	WatchdogInterval time.Duration
	WatchdogStall    time.Duration
	// BeforeAttempt, when set, runs at the top of every contained job
	// attempt — the chaos harness's injection point (panic here to
	// simulate a worker crash, block on ctx to simulate a hang). Leave
	// nil in production.
	BeforeAttempt func(ctx context.Context, jobID, kind string, attempt int)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 120 * time.Second
	}
	if c.Limits == (Limits{}) {
		c.Limits = DefaultLimits()
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 500 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 15 * time.Second
	}
	if c.WatchdogInterval <= 0 {
		c.WatchdogInterval = time.Second
	}
	if c.WatchdogStall == 0 {
		c.WatchdogStall = 60 * time.Second
	} else if c.WatchdogStall < 0 {
		c.WatchdogStall = 0 // disabled
	}
	return c
}

// Server is the reese-serve HTTP service.
type Server struct {
	cfg      Config
	log      *slog.Logger
	metrics  *Metrics
	cache    *resultCache
	jobs     *jobRunner
	journal  *journal
	mux      *http.ServeMux
	rootCtx  context.Context
	stopRoot context.CancelFunc
	// gridParallel is the harness Options.Parallel each job runs with.
	gridParallel int

	httpRequests *counterFamily
	httpLatency  *histogramFamily
	// faultsTriaged/triageDuration instrument the SDC triage pass:
	// escaped trials re-run with attribution, by outcome, and the wall
	// time each replay cost.
	faultsTriaged  *counterFamily
	triageDuration *histogramFamily
	started        time.Time
	// shardMetrics is registered on first ShardMetrics() call (only
	// coordinators carry shard instruments).
	shardMetrics *ShardMetrics
}

// New builds a Server, replays the journal (if configured), and starts
// the worker pool. It fails only on an unreadable or unwritable journal
// path; a corrupt journal is not an error — replay keeps every record
// up to the first bad line.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	rootCtx, stopRoot := context.WithCancel(context.Background())
	m := NewMetrics()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		metrics:  m,
		cache:    newResultCache(cfg.CacheEntries, m),
		rootCtx:  rootCtx,
		stopRoot: stopRoot,
		started:  time.Now(),
		httpRequests: m.CounterFamily("reese_serve_http_requests_total",
			"HTTP requests, by route and status code.", "path", "code"),
		httpLatency: m.HistogramFamily("reese_serve_http_request_duration_seconds",
			"HTTP request latency, by route.", DefaultLatencyBounds, "path"),
		faultsTriaged: m.CounterFamily("reese_faults_triaged_total",
			"Escaped trials re-run by the SDC triage pass, by outcome.", "outcome"),
		triageDuration: m.HistogramFamily("reese_faults_triage_duration_seconds",
			"Wall time of one triage replay.", DefaultLatencyBounds),
	}
	s.gridParallel = runtime.GOMAXPROCS(0) / cfg.Workers
	if s.gridParallel < 1 {
		s.gridParallel = 1
	}

	var replayed []replayedJob
	var maxID uint64
	if cfg.JournalPath != "" {
		var err error
		replayed, maxID, err = replayJournal(cfg.JournalPath)
		if err != nil {
			stopRoot()
			return nil, err
		}
		s.journal, err = openJournal(cfg.JournalPath)
		if err != nil {
			stopRoot()
			return nil, err
		}
	}

	s.jobs = newJobRunner(rootCtx, runnerConfig{
		workers:          cfg.Workers,
		queueDepth:       cfg.QueueDepth,
		maxJobs:          cfg.MaxJobs,
		jobTimeout:       cfg.JobTimeout,
		maxTimeout:       cfg.MaxTimeout,
		maxRetries:       cfg.MaxRetries,
		retryBackoff:     cfg.RetryBackoff,
		retryBackoffMax:  cfg.RetryBackoffMax,
		watchdogInterval: cfg.WatchdogInterval,
		watchdogStall:    cfg.WatchdogStall,
		beforeAttempt:    cfg.BeforeAttempt,
	}, s.journal, cfg.Logger, m)
	s.jobs.nextID.Store(maxID)
	s.adoptJournal(replayed)

	s.metrics.Gauge("reese_serve_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	registerRuntimeMetrics(s.metrics)

	// Log the effective configuration (defaults applied) once at
	// startup, so an operator can read what the process is actually
	// running with without reverse-engineering flags and defaults.
	cfg.Logger.Info("reese-serve configured",
		"workers", cfg.Workers,
		"queue_depth", cfg.QueueDepth,
		"cache_entries", cfg.CacheEntries,
		"max_jobs", cfg.MaxJobs,
		"journal", cfg.JournalPath,
		"job_timeout", cfg.JobTimeout.String(),
		"max_timeout", cfg.MaxTimeout.String(),
		"max_retries", cfg.MaxRetries,
		"watchdog_stall", cfg.WatchdogStall.String(),
		"max_insts", cfg.Limits.MaxInsts,
		"grid_parallel", s.gridParallel)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.instrument("/v1/run", s.submitHandler("run")))
	mux.HandleFunc("POST /v1/figure", s.instrument("/v1/figure", s.submitHandler("figure")))
	mux.HandleFunc("POST /v1/faults", s.instrument("/v1/faults", s.submitHandler("faults")))
	mux.HandleFunc("POST /v1/faults/batch", s.instrument("/v1/faults/batch", s.handleBatch))
	mux.HandleFunc("GET /v1/jobs", s.instrument("/v1/jobs", s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobGet))
	mux.HandleFunc("GET /v1/jobs/{id}/trace/{key...}", s.instrument("/v1/jobs/{id}/trace", s.handleJobTrace))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobCancel))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux = mux
	return s, nil
}

// adoptJournal registers every replayed job and re-enqueues the
// unfinished ones, their run closures rebuilt from the journaled
// canonical request. A non-terminal record whose request no longer
// normalizes (e.g. a renamed workload) is adopted as failed rather than
// dropped — a replayed job must never silently vanish.
func (s *Server) adoptJournal(replayed []replayedJob) {
	var pending []*Job
	for _, rj := range replayed {
		var run runFunc
		if !rj.State.terminal() {
			_, _, r, err := s.prepareJob(rj.Kind, rj.Req)
			if err != nil {
				s.log.Warn("journal replay: cannot rebuild job", "job", rj.ID, "kind", rj.Kind, "err", err)
				rj.State = StateFailed
				rj.Cause = fmt.Sprintf("journal replay: cannot rebuild job: %v", err)
			} else {
				run = s.withCachePut(rj.Key, r)
			}
		}
		j := s.jobs.adoptReplayed(rj, run)
		if !rj.State.terminal() {
			pending = append(pending, j)
		}
	}
	if len(pending) > 0 {
		s.log.Info("journal replay: re-enqueueing unfinished jobs", "count", len(pending))
	}
	s.jobs.enqueueReplayed(pending)
}

// Handler returns the root handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Mount registers an extra handler on the server's mux with the usual
// request instrumentation — how cmd/reese-serve attaches the cluster
// coordinator endpoint without this package importing cluster.
func (s *Server) Mount(pattern string, h http.Handler) {
	route := pattern
	if i := strings.IndexByte(route, ' '); i >= 0 {
		route = route[i+1:]
	}
	s.mux.HandleFunc(pattern, s.instrument(route, h.ServeHTTP))
}

// ShardMetrics lazily registers and returns the cluster shard
// instruments; the coordinator records into them through the cluster
// package's structural hook interface.
func (s *Server) ShardMetrics() *ShardMetrics {
	if s.shardMetrics == nil {
		s.shardMetrics = NewShardMetrics(s.metrics)
	}
	return s.shardMetrics
}

// Shutdown drains gracefully: intake closes (new submits get 503),
// queued and running jobs are given until ctx expires to finish, then
// any stragglers are cancelled through the root context. A clean drain
// compacts the journal; an expired one kills it first, so the cancelled
// stragglers keep their last durable state and replay on restart —
// forced shutdown deliberately has crash semantics. Always call
// Shutdown once; it is what stops the worker goroutines.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.jobs.drain(ctx)
	if err != nil {
		s.log.Warn("drain expired; cancelling in-flight jobs", "err", err)
		s.journal.kill()
	}
	s.stopRoot()
	s.jobs.wg.Wait()
	if err == nil {
		s.jobs.compactJournal()
	}
	s.journal.close()
	return err
}

// Crash simulates a SIGKILL for the chaos harness: journal appends stop
// reaching disk immediately, every job context dies, and the worker
// pool exits — without compaction, without drain, without touching the
// on-disk journal. A Server built afterwards on the same JournalPath
// replays whatever had been acknowledged.
func (s *Server) Crash() {
	s.journal.kill()
	s.jobs.mu.Lock()
	if !s.jobs.draining {
		s.jobs.draining = true
		close(s.jobs.drainNow)
	}
	s.jobs.mu.Unlock()
	s.stopRoot()
	s.jobs.wg.Wait()
	s.journal.close()
}

// statusRecorder captures the response code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request logging, the per-route
// request counter, and the latency histogram.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		s.httpRequests.With(route, fmt.Sprint(rec.code)).Inc()
		s.httpLatency.With(route).Observe(elapsed.Seconds())
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path, "route", route,
			"status", rec.code, "dur_ms", elapsed.Milliseconds())
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("encode response", "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, errorResponse{Error: err.Error()})
}

// writeUnavailable sheds load honestly: 503 with a Retry-After header
// (whole seconds, rounded up) and the same hint in milliseconds in the
// JSON envelope, so both curl-level and programmatic clients know when
// the queue is expected to have drained.
func (s *Server) writeUnavailable(w http.ResponseWriter, err error, retryAfter time.Duration) {
	secs := int64(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.writeJSON(w, http.StatusServiceUnavailable,
		errorResponse{Error: err.Error(), RetryAfterMS: retryAfter.Milliseconds()})
}

// parseWait reads the ?wait= query (a Go duration, or bare seconds),
// capped at MaxWait. 0 means asynchronous.
func (s *Server) parseWait(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		var secs float64
		if _, serr := fmt.Sscanf(raw, "%g", &secs); serr != nil {
			return 0, fmt.Errorf("bad wait %q: %v", raw, err)
		}
		d = time.Duration(secs * float64(time.Second))
	}
	if d < 0 {
		return 0, fmt.Errorf("negative wait %q", raw)
	}
	if d > s.cfg.MaxWait {
		d = s.cfg.MaxWait
	}
	return d, nil
}

// parseTimeout reads the ?timeout= query bounding each attempt of the
// job (capped at Config.MaxTimeout by submit).
func (s *Server) parseTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad timeout %q", raw)
	}
	return d, nil
}

// badRequestError marks a prepareJob failure as the client's fault.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

// maxRequestBody bounds a submit body; canonical machine configs are a
// few KB, so 4MB is generous.
const maxRequestBody = 4 << 20

// prepareJob normalizes a raw request body for the given kind into the
// canonical form that is journaled, the content address for the cache,
// and the run closure that executes it. It is the single path shared by
// live submits and journal replay, which is what makes replay sound:
// both rebuild the identical runFunc from the identical canonical
// bytes.
func (s *Server) prepareJob(kind string, body []byte) (key string, canonical json.RawMessage, run runFunc, err error) {
	bad := func(e error) (string, json.RawMessage, runFunc, error) {
		return "", nil, nil, badRequestError{e}
	}
	switch kind {
	case "run":
		var req RunRequest
		if jerr := json.Unmarshal(body, &req); jerr != nil {
			return bad(fmt.Errorf("decode request: %w", jerr))
		}
		req, nerr := req.normalize(s.cfg.Limits)
		if nerr != nil {
			return bad(nerr)
		}
		if key, err = cacheKey(kind, req); err != nil {
			return "", nil, nil, err
		}
		if canonical, err = json.Marshal(req); err != nil {
			return "", nil, nil, err
		}
		run = func(ctx context.Context, progress *atomic.Uint64) (jobOutput, error) {
			return runSimulation(ctx, req, progress)
		}
	case "figure":
		var req FigureRequest
		if jerr := json.Unmarshal(body, &req); jerr != nil {
			return bad(fmt.Errorf("decode request: %w", jerr))
		}
		req, nerr := req.normalize(s.cfg.Limits)
		if nerr != nil {
			return bad(nerr)
		}
		if key, err = cacheKey(kind, req); err != nil {
			return "", nil, nil, err
		}
		if canonical, err = json.Marshal(req); err != nil {
			return "", nil, nil, err
		}
		parallel := s.gridParallel
		run = func(ctx context.Context, progress *atomic.Uint64) (jobOutput, error) {
			return runFigure(ctx, req, parallel, progress)
		}
	case "faults":
		var req FaultsRequest
		if jerr := json.Unmarshal(body, &req); jerr != nil {
			return bad(fmt.Errorf("decode request: %w", jerr))
		}
		req, nerr := req.normalize(s.cfg.Limits)
		if nerr != nil {
			return bad(nerr)
		}
		if key, err = cacheKey(kind, req); err != nil {
			return "", nil, nil, err
		}
		if canonical, err = json.Marshal(req); err != nil {
			return "", nil, nil, err
		}
		parallel := s.gridParallel
		triaged := s.triageObserver()
		run = func(ctx context.Context, progress *atomic.Uint64) (jobOutput, error) {
			return runFaults(ctx, req, parallel, progress, triaged)
		}
	case "shard":
		var req ShardSpec
		if jerr := json.Unmarshal(body, &req); jerr != nil {
			return bad(fmt.Errorf("decode request: %w", jerr))
		}
		req, nerr := req.normalize(s.cfg.Limits)
		if nerr != nil {
			return bad(nerr)
		}
		if key, err = cacheKey(kind, req); err != nil {
			return "", nil, nil, err
		}
		if canonical, err = json.Marshal(req); err != nil {
			return "", nil, nil, err
		}
		parallel := s.gridParallel
		triaged := s.triageObserver()
		run = func(ctx context.Context, progress *atomic.Uint64) (jobOutput, error) {
			return runShard(ctx, req, parallel, progress, triaged)
		}
	default:
		return "", nil, nil, fmt.Errorf("unknown job kind %q", kind)
	}
	return key, canonical, run, nil
}

// triageObserver builds the harness.CampaignSpec.TriageObserver hook
// that records the server's triage metrics. The returned closure is
// called from campaign worker goroutines; the metric primitives are
// atomic, so it is safe as-is.
func (s *Server) triageObserver() func(outcome string, seconds float64) {
	return func(outcome string, seconds float64) {
		s.faultsTriaged.With(outcome).Inc()
		s.triageDuration.With().Observe(seconds)
	}
}

// withCachePut wraps a run closure so a successful result lands in the
// content-addressed cache.
func (s *Server) withCachePut(key string, run runFunc) runFunc {
	return func(ctx context.Context, progress *atomic.Uint64) (jobOutput, error) {
		out, err := run(ctx, progress)
		if err == nil {
			s.cache.put(key, out.payload)
		}
		return out, err
	}
}

// submitHandler builds the POST handler for one job kind: decode +
// normalize, consult the cache, enqueue on miss, then either return 202
// immediately or wait.
//
// Jobs always derive from the server root context (never the request's:
// a ?wait= that expires returns 202 and the job must survive the
// handler returning). Interactive cancellation is explicit instead:
// waitAndReply calls Cancel when a waiting submitter disconnects,
// because nobody is left to read the answer. Asynchronous jobs are
// bounded only by ?timeout=, DELETE, and Shutdown.
func (s *Server) submitHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		wait, err := s.parseWait(r)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		timeout, err := s.parseTimeout(r)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
			return
		}
		key, canonical, run, err := s.prepareJob(kind, body)
		if err != nil {
			var bad badRequestError
			if errors.As(err, &bad) {
				s.writeError(w, http.StatusBadRequest, err)
			} else {
				s.writeError(w, http.StatusInternalServerError, err)
			}
			return
		}

		if payload, ok := s.cache.get(key); ok {
			j := s.jobs.complete(kind, key, payload)
			s.log.Info("job served from cache", "job", j.ID, "kind", kind, "key", key[:12])
			s.writeJSON(w, http.StatusOK, j.snapshot())
			return
		}

		j, err := s.jobs.submit(kind, key, canonical, timeout, s.withCachePut(key, run))
		switch {
		case errors.Is(err, errQueueFull):
			s.writeUnavailable(w, err, s.jobs.retryAfter())
			return
		case errors.Is(err, errDraining):
			// Shutting down: the hint tells the client to find another
			// replica, not to wait for this one's queue.
			s.writeUnavailable(w, err, 30*time.Second)
			return
		case err != nil:
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.log.Info("job queued", "job", j.ID, "kind", kind, "key", key[:12], "wait", wait.String())
		if wait == 0 {
			s.writeJSON(w, http.StatusAccepted, j.snapshot())
			return
		}
		s.waitAndReply(w, r, j, wait, true)
	}
}

// waitAndReply blocks until the job finishes, the wait expires (reply
// with in-flight status), or — when interactive — the client vanishes
// (cancel the job; there is nobody to reply to).
func (s *Server) waitAndReply(w http.ResponseWriter, r *http.Request, j *Job, wait time.Duration, interactive bool) {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-j.done:
		v := j.snapshot()
		code := http.StatusOK
		if v.State == StateFailed {
			code = http.StatusInternalServerError
		}
		s.writeJSON(w, code, v)
	case <-timer.C:
		s.writeJSON(w, http.StatusAccepted, j.snapshot())
	case <-r.Context().Done():
		if interactive {
			s.log.Info("client disconnected; cancelling job", "job", j.ID)
			j.Cancel()
			<-j.done
		}
	}
}

// runSimulation executes one RunRequest — the reese-sim code path with
// a context-aware cycle loop and the watchdog's progress heartbeat.
func runSimulation(ctx context.Context, req RunRequest, progress *atomic.Uint64) (jobOutput, error) {
	spec, ok := workload.ByName(req.Workload)
	if !ok {
		return jobOutput{}, fmt.Errorf("unknown workload %q", req.Workload)
	}
	prog, err := spec.Build(req.Iters)
	if err != nil {
		return jobOutput{}, err
	}
	var injector fault.Injector = fault.None{}
	if req.FaultAt > 0 {
		injector = &fault.AtSeq{Seq: req.FaultAt, Bit: req.FaultBit}
	}
	cpu, err := pipeline.New(*req.Machine, prog, injector)
	if err != nil {
		return jobOutput{}, err
	}
	cpu.SetProgress(progress)
	res, err := cpu.RunContext(ctx, req.Insts)
	if err != nil {
		return jobOutput{}, err
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return jobOutput{}, err
	}
	return jobOutput{payload: payload, insts: res.Committed}, nil
}

// runFigure executes one FigureRequest.
func runFigure(ctx context.Context, req FigureRequest, parallel int, progress *atomic.Uint64) (jobOutput, error) {
	opt := harness.Options{Insts: req.Insts, Parallel: parallel, Ctx: ctx, Progress: progress}
	var payload FigurePayload
	var insts uint64
	switch req.Figure {
	case "2", "3", "4", "5":
		f := map[string]func(harness.Options) (*harness.FigureResult, error){
			"2": harness.Figure2, "3": harness.Figure3, "4": harness.Figure4, "5": harness.Figure5,
		}[req.Figure]
		fig, err := f(opt)
		if err != nil {
			return jobOutput{}, err
		}
		payload = FigurePayload{Figure: fig, Table: fig.Table()}
		for _, c := range fig.Cells {
			insts += c.Result.Committed
		}
	case "6":
		rows, err := harness.Figure6(opt)
		if err != nil {
			return jobOutput{}, err
		}
		payload = FigurePayload{Rows: rows, Table: harness.Figure6Table(rows)}
		insts = req.Insts * uint64(len(rows)) * 30 // 4 sub-figures × ~30 cells, approximate
	case "7":
		points, err := harness.Figure7(opt)
		if err != nil {
			return jobOutput{}, err
		}
		payload = FigurePayload{Points: points, Table: harness.Figure7Table(points)}
		insts = req.Insts * uint64(len(points)) * 18
	default:
		return jobOutput{}, fmt.Errorf("unknown figure %q", req.Figure)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return jobOutput{}, err
	}
	return jobOutput{payload: raw, insts: insts}, nil
}

// runFaults executes one FaultsRequest.
func runFaults(ctx context.Context, req FaultsRequest, parallel int, progress *atomic.Uint64, triaged func(string, float64)) (jobOutput, error) {
	opt := harness.Options{Parallel: parallel, Ctx: ctx, Progress: progress}
	var payload FaultsPayload
	if req.Workload == "" {
		table, reports, err := harness.CampaignAll(req.Injections, req.Seed, opt)
		if err != nil {
			return jobOutput{}, err
		}
		payload = FaultsPayload{Reports: reports, Table: table}
	} else {
		// One workload: REESE vs baseline, RSQ-only structures dropped on
		// the machine that has no R-stream Queue.
		var b strings.Builder
		for _, cfg := range []config.Machine{config.Starting().WithReese(), config.Starting()} {
			if req.L2ECC {
				cfg.Memory.L2.ECC = true
			}
			spec := harness.CampaignSpec{
				Workload:           req.Workload,
				Machine:            cfg,
				Injections:         req.Injections,
				Seed:               req.Seed,
				TargetInsts:        req.TargetInsts,
				CheckpointInterval: req.CheckpointInterval,
				Triage:             req.Triage,
				TriageDetected:     req.TriageDetected,
				TriageObserver:     triaged,
			}
			rsq := cfg.Reese.Enabled && cfg.Reese.Mode != config.ModeDupDispatch
			for _, name := range req.Structures {
				st, ok := fault.ParseStruct(name)
				if !ok || (st.NeedsRSQ() && !rsq) {
					continue
				}
				spec.Structures = append(spec.Structures, st)
			}
			if len(req.Structures) > 0 && len(spec.Structures) == 0 {
				// Only RSQ structures were requested; keep the baseline half
				// non-empty so the comparison still renders.
				spec.Structures = []fault.Struct{fault.StructResult}
			}
			rep, err := harness.Campaign(spec, opt)
			if err != nil {
				return jobOutput{}, err
			}
			// Escaped trials keep their triage records in the payload, and
			// the trace blobs ride in the traces map (keyed
			// "reportIdx/trialIdx") for the per-trace endpoint.
			reportIdx := len(payload.Reports)
			for i := range rep.Trials {
				t := rep.Trials[i]
				if t.Triage == nil {
					continue
				}
				payload.Escapes = append(payload.Escapes, t)
				if len(t.Triage.Trace) > 0 {
					if payload.Traces == nil {
						payload.Traces = make(map[string]json.RawMessage)
					}
					payload.Traces[fmt.Sprintf("%d/%d", reportIdx, t.Index)] = json.RawMessage(t.Triage.Trace)
				}
			}
			payload.Reports = append(payload.Reports, *rep)
			b.WriteString(rep.Table())
			b.WriteByte('\n')
		}
		payload.Table = b.String()
	}
	raw, merr := json.Marshal(payload)
	if merr != nil {
		return jobOutput{}, merr
	}
	var insts uint64
	for i := range payload.Reports {
		insts += payload.Reports[i].Injected * payload.Reports[i].GoldenInsts
	}
	return jobOutput{payload: raw, insts: insts}, nil
}

// runShard executes one ShardSpec: the [offset, offset+count) slice of
// the full campaign plan. The payload carries the per-trial records
// alongside the report (the report's own JSON form excludes them) so
// the coordinator can reconstitute the full trial log after the merge.
func runShard(ctx context.Context, req ShardSpec, parallel int, progress *atomic.Uint64, triaged func(string, float64)) (jobOutput, error) {
	opt := harness.Options{Parallel: parallel, Ctx: ctx, Progress: progress}
	spec := req.campaignSpec()
	spec.TriageObserver = triaged
	rep, err := harness.Campaign(spec, opt)
	if err != nil {
		return jobOutput{}, err
	}
	p := ShardPayload{Report: *rep, Trials: rep.Trials}
	for i := range rep.Trials {
		t := &rep.Trials[i]
		if t.Triage == nil || len(t.Triage.Trace) == 0 {
			continue
		}
		if p.Traces == nil {
			p.Traces = make(map[string]json.RawMessage)
		}
		// Keyed by the trial's global plan index, which is what the
		// cluster coordinator knows the trial by after the merge.
		p.Traces[strconv.Itoa(t.Index)] = json.RawMessage(t.Triage.Trace)
	}
	// Stamp the end-to-end integrity digest so the coordinator can tell
	// a damaged-in-flight payload from a healthy one.
	digest, err := p.CanonicalDigest()
	if err != nil {
		return jobOutput{}, err
	}
	p.Digest = digest
	raw, err := json.Marshal(p)
	if err != nil {
		return jobOutput{}, err
	}
	return jobOutput{payload: raw, insts: rep.Injected * rep.GoldenInsts}, nil
}

// handleBatch serves POST /v1/faults/batch: several shards accepted (or
// rejected) independently in one round trip. The response is always
// 200 with positional per-shard items — a full queue rejects shard i
// with the usual Retry-After hint inside item i rather than failing
// the whole batch, so the coordinator can hold back just the overflow.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	timeout, err := s.parseTimeout(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Shards) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(req.Shards) > maxBatchShards {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d shards exceeds limit %d", len(req.Shards), maxBatchShards))
		return
	}
	resp := BatchResponse{Items: make([]BatchItem, len(req.Shards))}
	for i, shard := range req.Shards {
		item := &resp.Items[i]
		raw, err := json.Marshal(shard)
		if err != nil {
			item.Error = err.Error()
			continue
		}
		key, canonical, run, err := s.prepareJob("shard", raw)
		if err != nil {
			item.Error = err.Error()
			continue
		}
		if payload, ok := s.cache.get(key); ok {
			// Idempotent resubmission: a shard this worker already ran is
			// answered from the content-addressed cache, which is what makes
			// reassignment double-count-proof.
			j := s.jobs.complete("shard", key, payload)
			v := j.snapshot()
			item.Job = &v
			continue
		}
		j, err := s.jobs.submit("shard", key, canonical, timeout, s.withCachePut(key, run))
		switch {
		case errors.Is(err, errQueueFull):
			item.Error = err.Error()
			item.RetryAfterMS = s.jobs.retryAfter().Milliseconds()
		case errors.Is(err, errDraining):
			item.Error = err.Error()
			item.RetryAfterMS = (30 * time.Second).Milliseconds()
		case err != nil:
			item.Error = err.Error()
		default:
			v := j.snapshot()
			item.Job = &v
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleReadyz serves GET /readyz — readiness, as distinct from
// /healthz liveness: 503 while the journal replay backlog is still
// re-enqueueing or a graceful drain has begun, 200 otherwise. The
// body always reports queue depth, so a coordinator can prefer the
// least-loaded ready worker.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	draining := s.jobs.isDraining()
	replaying := s.jobs.replayBacklog.Load()
	body := map[string]any{
		"ready":          !draining && replaying == 0,
		"draining":       draining,
		"replay_backlog": replaying,
		"queue_depth":    s.jobs.queued.Load(),
		"queue_capacity": s.cfg.QueueDepth,
		"jobs_running":   s.jobs.running.Load(),
	}
	code := http.StatusOK
	if draining || replaying > 0 {
		code = http.StatusServiceUnavailable
		if draining {
			w.Header().Set("Retry-After", "30")
		} else {
			w.Header().Set("Retry-After", "1")
		}
	}
	s.writeJSON(w, code, body)
}

// handleJobGet serves GET /v1/jobs/{id} (?wait= to block).
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	wait, err := s.parseWait(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if wait == 0 {
		v := j.snapshot()
		code := http.StatusOK
		if !v.State.terminal() {
			code = http.StatusAccepted
		}
		s.writeJSON(w, code, v)
		return
	}
	// A poller disconnecting must NOT cancel someone else's job.
	s.waitAndReply(w, r, j, wait, false)
}

// handleJobTrace serves GET /v1/jobs/{id}/trace/{key...}: one triaged
// trial's Perfetto trace blob, extracted from the finished job's result
// payload. Keys are "reportIdx/trialIdx" for faults jobs and the global
// trial index for shard jobs — exactly the keys of the payload's traces
// map, which is why the route wildcard spans path segments.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	v := j.snapshot()
	if v.State != StateDone || len(v.Result) == 0 {
		s.writeError(w, http.StatusConflict, fmt.Errorf("job %s has no result (state %s)", v.ID, v.State))
		return
	}
	var res struct {
		Traces map[string]json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(v.Result, &res); err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("decode job result: %w", err))
		return
	}
	key := r.PathValue("key")
	blob, ok := res.Traces[key]
	if !ok {
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("job %s has no trace %q (the trial was not triaged, or the key is wrong)", v.ID, key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
}

// handleJobCancel serves DELETE /v1/jobs/{id}.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	j.Cancel()
	<-j.done
	s.writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobList serves GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.jobs.list())
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.stats()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"uptime_s":     time.Since(s.started).Seconds(),
		"jobs_queued":  s.jobs.queued.Load(),
		"jobs_running": s.jobs.running.Load(),
		"cache_hits":   hits,
		"cache_misses": misses,
		"journal":      s.cfg.JournalPath,
		"workloads":    workload.Names(),
	})
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.metrics.Render(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}
