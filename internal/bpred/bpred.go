// Package bpred implements the branch predictors used by the REESE
// paper's simulator: gshare (McFarling, combining global history with the
// branch address), a classic bimodal table, a static predictor, a branch
// target buffer, and a return-address stack. The paper's Table 1 selects
// gshare.
package bpred

import "fmt"

// Predictor predicts conditional branch directions and learns from
// resolved outcomes.
//
// Predictors with global history split learning in two: ShiftHistory is
// called at fetch time with the speculative outcome (the front end
// repairs its history as soon as a misprediction is discovered, so the
// history register tracks the fetch stream, as in SimpleScalar's
// speculative-update mode), while Train adjusts the pattern tables at
// branch resolution. Update performs both, for standalone use.
type Predictor interface {
	// Clone returns an independent deep copy (used when forking a
	// machine from a checkpoint).
	Clone() Predictor
	// StateEqual reports whether o is the same predictor kind with
	// identical tables and history — the convergence test fork-based
	// fault replay relies on.
	StateEqual(o Predictor) bool
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint32) bool
	// ShiftHistory advances the speculative global history (no-op for
	// history-free predictors).
	ShiftHistory(taken bool)
	// Snapshot captures the history state a prediction is about to use,
	// so resolution can train the same table entry (0 for history-free
	// predictors).
	Snapshot() uint32
	// Restore rewinds the speculative history to an earlier snapshot
	// (used when squashing a wrong path).
	Restore(snapshot uint32)
	// TrainAt adjusts the pattern-table entry that the prediction made
	// under snapshot used, with the resolved outcome.
	TrainAt(pc uint32, snapshot uint32, taken bool)
	// Train adjusts the pattern tables using the current history.
	Train(pc uint32, taken bool)
	// Update trains tables and shifts history in one step.
	Update(pc uint32, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// Stats tracks prediction accuracy. Callers bump it where predictions are
// checked (the pipeline), since only they know the true outcome ordering.
type Stats struct {
	Lookups uint64
	Hits    uint64
}

// Accuracy returns the fraction of correct predictions.
func (s Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// counter is a 2-bit saturating counter; values 2,3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Gshare is McFarling's gshare predictor: a table of 2-bit counters
// indexed by (global history XOR branch PC).
type Gshare struct {
	table   []counter
	history uint32
	bits    uint32
	mask    uint32
	// readLog, when non-nil, collects the table entries Predict consults
	// (see ReadLogger in readset.go).
	readLog *ReadSet
}

var _ Predictor = (*Gshare)(nil)

// NewGshare builds a gshare predictor with 2^bits counters and a history
// register of the same width.
func NewGshare(bits uint32) (*Gshare, error) {
	if bits == 0 || bits > 24 {
		return nil, fmt.Errorf("bpred: gshare bits %d out of range [1,24]", bits)
	}
	g := &Gshare{bits: bits, mask: 1<<bits - 1}
	g.table = make([]counter, 1<<bits)
	// Initialise to weakly taken (2), SimpleScalar's convention.
	for i := range g.table {
		g.table[i] = 2
	}
	return g, nil
}

func (g *Gshare) index(pc uint32) uint32 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint32) bool {
	i := g.index(pc)
	if g.readLog != nil {
		g.readLog.set(i)
	}
	return g.table[i].taken()
}

// ShiftHistory implements Predictor: it shifts the outcome into the
// global history register.
func (g *Gshare) ShiftHistory(taken bool) {
	g.history = (g.history << 1) & g.mask
	if taken {
		g.history |= 1
	}
}

// Snapshot implements Predictor: it returns the current history
// register, to be carried with the branch until resolution.
func (g *Gshare) Snapshot() uint32 { return g.history }

// Restore implements Predictor.
func (g *Gshare) Restore(snapshot uint32) { g.history = snapshot & g.mask }

// TrainAt implements Predictor: it adjusts the 2-bit counter that a
// prediction made under snapshot consulted — the same entry, even
// though the speculative history has moved on since.
func (g *Gshare) TrainAt(pc uint32, snapshot uint32, taken bool) {
	i := ((pc >> 2) ^ snapshot) & g.mask
	g.table[i] = g.table[i].update(taken)
}

// Train implements Predictor: it adjusts the 2-bit counter the current
// history selects for pc.
func (g *Gshare) Train(pc uint32, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
}

// Update implements Predictor. It updates the counter first (using the
// history the prediction used), then shifts the outcome into the history
// register.
func (g *Gshare) Update(pc uint32, taken bool) {
	g.Train(pc, taken)
	g.ShiftHistory(taken)
}

// Name implements Predictor.
func (g *Gshare) Name() string { return fmt.Sprintf("gshare:%d", g.bits) }

// Clone implements Predictor.
func (g *Gshare) Clone() Predictor {
	cp := *g
	cp.table = append([]counter(nil), g.table...)
	cp.readLog = nil // logging does not survive a fork
	return &cp
}

// StateEqual implements Predictor.
func (g *Gshare) StateEqual(o Predictor) bool {
	og, ok := o.(*Gshare)
	if !ok || og.history != g.history || og.bits != g.bits || len(og.table) != len(g.table) {
		return false
	}
	for i, v := range g.table {
		if og.table[i] != v {
			return false
		}
	}
	return true
}

// Bimodal is a simple PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter
	mask  uint32
	bits  uint32
	// readLog, when non-nil, collects the table entries Predict consults
	// (see ReadLogger in readset.go).
	readLog *ReadSet
}

var _ Predictor = (*Bimodal)(nil)

// NewBimodal builds a bimodal predictor with 2^bits counters.
func NewBimodal(bits uint32) (*Bimodal, error) {
	if bits == 0 || bits > 24 {
		return nil, fmt.Errorf("bpred: bimodal bits %d out of range [1,24]", bits)
	}
	b := &Bimodal{bits: bits, mask: 1<<bits - 1, table: make([]counter, 1<<bits)}
	for i := range b.table {
		b.table[i] = 2
	}
	return b, nil
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint32) bool {
	i := (pc >> 2) & b.mask
	if b.readLog != nil {
		b.readLog.set(i)
	}
	return b.table[i].taken()
}

// ShiftHistory implements Predictor (bimodal keeps no history).
func (b *Bimodal) ShiftHistory(taken bool) {}

// Snapshot implements Predictor (bimodal keeps no history).
func (b *Bimodal) Snapshot() uint32 { return 0 }

// Restore implements Predictor (no history).
func (b *Bimodal) Restore(snapshot uint32) {}

// TrainAt implements Predictor; the snapshot is irrelevant.
func (b *Bimodal) TrainAt(pc uint32, snapshot uint32, taken bool) { b.Train(pc, taken) }

// Train implements Predictor.
func (b *Bimodal) Train(pc uint32, taken bool) {
	i := (pc >> 2) & b.mask
	b.table[i] = b.table[i].update(taken)
}

// Update implements Predictor.
func (b *Bimodal) Update(pc uint32, taken bool) { b.Train(pc, taken) }

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal:%d", b.bits) }

// Clone implements Predictor.
func (b *Bimodal) Clone() Predictor {
	cp := *b
	cp.table = append([]counter(nil), b.table...)
	cp.readLog = nil // logging does not survive a fork
	return &cp
}

// StateEqual implements Predictor.
func (b *Bimodal) StateEqual(o Predictor) bool {
	ob, ok := o.(*Bimodal)
	if !ok || ob.bits != b.bits || len(ob.table) != len(b.table) {
		return false
	}
	for i, v := range b.table {
		if ob.table[i] != v {
			return false
		}
	}
	return true
}

// Static predicts a fixed direction (taken models "backward taken" well
// enough for loop code; not-taken is the trivial baseline).
type Static struct{ Taken bool }

var _ Predictor = (*Static)(nil)

// Predict implements Predictor.
func (s *Static) Predict(pc uint32) bool { return s.Taken }

// ShiftHistory implements Predictor (no state).
func (s *Static) ShiftHistory(taken bool) {}

// Snapshot implements Predictor (no state).
func (s *Static) Snapshot() uint32 { return 0 }

// Restore implements Predictor (no state).
func (s *Static) Restore(snapshot uint32) {}

// TrainAt implements Predictor (no state).
func (s *Static) TrainAt(pc uint32, snapshot uint32, taken bool) {}

// Train implements Predictor (no state).
func (s *Static) Train(pc uint32, taken bool) {}

// Update implements Predictor (no state).
func (s *Static) Update(pc uint32, taken bool) {}

// Clone implements Predictor (stateless: a value copy suffices).
func (s *Static) Clone() Predictor { cp := *s; return &cp }

// StateEqual implements Predictor.
func (s *Static) StateEqual(o Predictor) bool {
	os, ok := o.(*Static)
	return ok && os.Taken == s.Taken
}

// Name implements Predictor.
func (s *Static) Name() string {
	if s.Taken {
		return "static:taken"
	}
	return "static:nottaken"
}

// Combining is McFarling's combining predictor: a chooser table selects
// per-branch between two component predictors.
type Combining struct {
	p1, p2  Predictor
	chooser []counter // >=2 selects p1
	mask    uint32
}

var _ Predictor = (*Combining)(nil)

// NewCombining builds a combining predictor over p1 and p2 with a
// 2^bits-entry chooser.
func NewCombining(p1, p2 Predictor, bits uint32) (*Combining, error) {
	if bits == 0 || bits > 24 {
		return nil, fmt.Errorf("bpred: chooser bits %d out of range [1,24]", bits)
	}
	c := &Combining{p1: p1, p2: p2, mask: 1<<bits - 1, chooser: make([]counter, 1<<bits)}
	for i := range c.chooser {
		c.chooser[i] = 2
	}
	return c, nil
}

// Predict implements Predictor.
func (c *Combining) Predict(pc uint32) bool {
	if c.chooser[(pc>>2)&c.mask].taken() {
		return c.p1.Predict(pc)
	}
	return c.p2.Predict(pc)
}

// ShiftHistory implements Predictor: both components advance.
func (c *Combining) ShiftHistory(taken bool) {
	c.p1.ShiftHistory(taken)
	c.p2.ShiftHistory(taken)
}

// Snapshot implements Predictor. Both components see the same global
// outcome stream, so one snapshot serves both; it is taken from the
// first component (components of differing history widths truncate it
// themselves via their index masks).
func (c *Combining) Snapshot() uint32 { return c.p1.Snapshot() }

// Restore implements Predictor.
func (c *Combining) Restore(snapshot uint32) {
	c.p1.Restore(snapshot)
	c.p2.Restore(snapshot)
}

// TrainAt implements Predictor: the chooser is trained towards
// whichever component was right, then both components train the entries
// their predictions used.
func (c *Combining) TrainAt(pc uint32, snapshot uint32, taken bool) {
	i := (pc >> 2) & c.mask
	r1 := c.p1.Predict(pc) == taken
	r2 := c.p2.Predict(pc) == taken
	if r1 != r2 {
		c.chooser[i] = c.chooser[i].update(r1)
	}
	c.p1.TrainAt(pc, snapshot, taken)
	c.p2.TrainAt(pc, snapshot, taken)
}

// Train implements Predictor: the chooser is trained towards whichever
// component was right, then both components train their tables.
func (c *Combining) Train(pc uint32, taken bool) {
	i := (pc >> 2) & c.mask
	r1 := c.p1.Predict(pc) == taken
	r2 := c.p2.Predict(pc) == taken
	if r1 != r2 {
		c.chooser[i] = c.chooser[i].update(r1)
	}
	c.p1.Train(pc, taken)
	c.p2.Train(pc, taken)
}

// Update implements Predictor.
func (c *Combining) Update(pc uint32, taken bool) {
	c.Train(pc, taken)
	c.ShiftHistory(taken)
}

// Name implements Predictor.
func (c *Combining) Name() string {
	return fmt.Sprintf("comb(%s,%s)", c.p1.Name(), c.p2.Name())
}

// Clone implements Predictor: components clone recursively.
func (c *Combining) Clone() Predictor {
	cp := *c
	cp.p1 = c.p1.Clone()
	cp.p2 = c.p2.Clone()
	cp.chooser = append([]counter(nil), c.chooser...)
	return &cp
}

// StateEqual implements Predictor.
func (c *Combining) StateEqual(o Predictor) bool {
	oc, ok := o.(*Combining)
	if !ok || len(oc.chooser) != len(c.chooser) {
		return false
	}
	for i, v := range c.chooser {
		if oc.chooser[i] != v {
			return false
		}
	}
	return c.p1.StateEqual(oc.p1) && c.p2.StateEqual(oc.p2)
}
