package pipeline

// Pipeline event tracing — the equivalent of SimpleScalar's ptrace. When
// enabled, the CPU writes one line per pipeline event (fetch, dispatch,
// issue, writeback, RSQ entry, R-dispatch, verify, commit, recovery) to
// an io.Writer, letting a developer watch instructions move through the
// machine cycle by cycle.
//
// The event vocabulary is shared with the flight recorder
// (internal/obs.Recorder): the same lifecycle points feed both the
// line-oriented trace and the ring buffer, and both are nil-gated so a
// run with neither enabled pays only a pointer test per event site.

import (
	"fmt"
	"io"

	"reese/internal/emu"
	"reese/internal/obs"
)

// EventKind labels a pipeline trace event. It is an alias of
// obs.EventKind so the trace and the flight recorder share one
// vocabulary.
type EventKind = obs.EventKind

// Pipeline trace events, re-exported for compatibility.
const (
	EvFetch         = obs.EvFetch
	EvDispatch      = obs.EvDispatch
	EvIssue         = obs.EvIssue
	EvWriteback     = obs.EvWriteback
	EvEnterRSQ      = obs.EvEnterRSQ
	EvDispatchR     = obs.EvDispatchR
	EvIssueR        = obs.EvIssueR
	EvVerify        = obs.EvVerify
	EvCommit        = obs.EvCommit
	EvMispredict    = obs.EvMispredict
	EvFaultInjected = obs.EvFaultInjected
	EvMismatch      = obs.EvMismatch
	EvRecovery      = obs.EvRecovery
	EvDivergence    = obs.EvDivergence
)

// SetTrace directs pipeline event lines to w (nil disables tracing).
// Call before Run; tracing large runs produces a lot of output.
func (c *CPU) SetTrace(w io.Writer) { c.traceW = w }

// traceEvent emits one event line if tracing is enabled.
func (c *CPU) traceEvent(kind EventKind, tr *emu.Trace, detail string) {
	if c.traceW == nil {
		return
	}
	if detail != "" {
		fmt.Fprintf(c.traceW, "%8d %-10s %#08x %-24s %s\n", c.cycle, kind, tr.PC, tr.Inst.String(), detail)
		return
	}
	fmt.Fprintf(c.traceW, "%8d %-10s %#08x %s\n", c.cycle, kind, tr.PC, tr.Inst.String())
}

// SetRecorder arms the flight recorder: every lifecycle event is also
// appended to r's ring buffer (fixed cost, no allocation). Call before
// Run; nil disarms. Dump with r.WriteChromeTrace after the run.
func (c *CPU) SetRecorder(r *obs.Recorder) { c.recorder = r }

// Recorder returns the armed flight recorder (nil when off).
func (c *CPU) Recorder() *obs.Recorder { return c.recorder }

// MarkDivergence records a DIVERGENCE instant into the flight recorder
// (no-op when the recorder is off). The triage pass calls it from its
// commit watch when the lockstep golden comparison finds the first
// divergent commit; it bypasses the triage freeze window by
// construction (markers always record).
func (c *CPU) MarkDivergence(cycle, seq uint64, tr emu.Trace) {
	if c.recorder == nil {
		return
	}
	c.recorder.Record(obs.Event{
		Cycle: cycle,
		Seq:   seq,
		PC:    tr.PC,
		Inst:  tr.Inst,
		Kind:  obs.EvDivergence,
	})
}

// record appends one flight-recorder event stamped with the current
// cycle. Callers on the hot path guard with `c.recorder != nil` first,
// like the traceW gate, so the disabled cost is one pointer test.
func (c *CPU) record(kind obs.EventKind, seq uint64, tr *emu.Trace, fuKind uint8, unit int16) {
	c.recordAt(c.cycle, kind, seq, tr, fuKind, unit)
}

// recordAt is record with an explicit cycle stamp — used to backdate
// the fetch event to the cycle the instruction actually entered the
// fetch queue (its sequence number only exists from dispatch on).
func (c *CPU) recordAt(cycle uint64, kind obs.EventKind, seq uint64, tr *emu.Trace, fuKind uint8, unit int16) {
	if c.recorder == nil {
		return
	}
	// Triage window (SetRecorderWindow): once the injector has fired and
	// the post-injection window has passed, lifecycle recording freezes —
	// the ring keeps the context around the injection instead of the tail
	// of the run. Marker kinds always land so late detections and the
	// divergence instant stay visible.
	if c.recFreeze != 0 && c.faultCycle != 0 && cycle > c.faultCycle+c.recFreeze {
		switch kind {
		case obs.EvFaultInjected, obs.EvMismatch, obs.EvRecovery, obs.EvDivergence:
		default:
			return
		}
	}
	c.recorder.Record(obs.Event{
		Cycle: cycle,
		Seq:   seq,
		PC:    tr.PC,
		Inst:  tr.Inst,
		Kind:  kind,
		FU:    fuKind,
		Unit:  unit,
	})
}
