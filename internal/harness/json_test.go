package harness

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"reese/internal/pipeline"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestFigureJSONGolden locks the wire format of the figure types the
// server and reese-sweep -json emit. The fixture is hand-built (no
// simulation) so the golden file only changes when the encoding does —
// which is exactly the event that must be deliberate: reese-serve
// clients and its result cache both depend on this shape.
func TestFigureJSONGolden(t *testing.T) {
	fig := &FigureResult{
		ID:       "Figure 2",
		Title:    "initial comparison, Table 1 starting configuration",
		Variants: []string{"Baseline", "REESE"},
		IPC: map[string]map[string]float64{
			"gcc": {"Baseline": 1.25, "REESE": 1.0},
			"go":  {"Baseline": 1.5, "REESE": 1.125},
		},
		Workloads: []string{"gcc", "go"},
		Cells: []Cell{
			{Workload: "gcc", Variant: "Baseline", Result: pipeline.Result{
				Config: "table1-starting", Workload: "gcc",
				Cycles: 80_000, Committed: 100_000, IPC: 1.25, Halted: false,
				Branches: 12_000, Mispredicts: 600, BranchAcc: 0.95,
			}},
		},
	}
	doc := struct {
		Figure *FigureResult  `json:"figure"`
		Rows   []SummaryRow   `json:"rows"`
		Points []Figure7Point `json:"points"`
	}{
		Figure: fig,
		Rows: []SummaryRow{{
			Config: "None", BaselineIPC: 1.375, ReeseIPC: 1.0625,
			Spared2IPC: 1.25, GapPercent: 22.7, SparedGapPct: 9.1,
		}},
		Points: []Figure7Point{{
			Label: "RUU=64", BaselineIPC: 2.0, ReeseIPC: 1.75,
			Reese2AIPC: 1.9, GapPercent: 12.5, Gap2APct: 5.0,
		}},
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "figures.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("figure JSON encoding drifted from %s\n got:\n%s\nwant:\n%s\n(if intentional, rerun with -update-golden)",
			golden, buf.Bytes(), want)
	}
}
