package bpred

import "math/bits"

// Bounded-future state comparison for checkpoint/fork fault replay.
//
// After a REESE recovery the replayed branches retrain the pattern
// tables, so a recovered trial's predictor rarely becomes bit-identical
// to the golden run's again — yet almost none of the diverged counters
// are ever consulted afterwards. Exact table equality therefore rejects
// convergence that is behaviorally real. The golden run knows its own
// future: logging which entries its remaining predictions consult lets
// the convergence test compare exactly those entries and ignore the
// rest.
//
// Soundness: if every table entry the golden suffix reads for a
// prediction is equal at the boundary (and history, configuration and
// all other machine state match exactly), both machines predict
// identically, hence fetch identical streams, resolve identically, and
// train the same entries in the same directions — so compared entries
// stay equal up to each later read, by induction. Entries that are only
// ever written (trained) affect nothing but their own value and may
// diverge freely. Reads that feed other state — the combining
// predictor's chooser update consults its components' predictions — go
// through Predict and are logged like any other.

// ReadSet is a bitset over a predictor's pattern-table entries marking
// those consulted by predictions during a stretch of execution.
type ReadSet struct {
	bits []uint64
}

// NewReadSet returns an empty set covering n entries.
func NewReadSet(n int) *ReadSet {
	return &ReadSet{bits: make([]uint64, (n+63)/64)}
}

func (r *ReadSet) set(i uint32)      { r.bits[i>>6] |= 1 << (i & 63) }
func (r *ReadSet) get(i uint32) bool { return r.bits[i>>6]&(1<<(i&63)) != 0 }

// OrInto unions this set into dst (same entry count).
func (r *ReadSet) OrInto(dst *ReadSet) {
	for i, w := range r.bits {
		dst.bits[i] |= w
	}
}

// Clone returns an independent copy.
func (r *ReadSet) Clone() *ReadSet {
	return &ReadSet{bits: append([]uint64(nil), r.bits...)}
}

// Count returns the number of marked entries.
func (r *ReadSet) Count() int {
	n := 0
	for _, w := range r.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// ReadLogger is implemented by predictors that can log which
// pattern-table entries their predictions consult and compare state
// restricted to such a set. Predictors without the capability are
// compared exactly by the convergence test.
type ReadLogger interface {
	// NumEntries returns the pattern-table size a ReadSet must cover.
	NumEntries() int
	// SetReadLog installs the set Predict marks consulted entries in
	// (nil stops logging).
	SetReadLog(rs *ReadSet)
	// StateEqualOn is StateEqual restricted to the entries marked in rs;
	// history and configuration still compare exactly.
	StateEqualOn(o Predictor, rs *ReadSet) bool
}

var _ ReadLogger = (*Gshare)(nil)
var _ ReadLogger = (*Bimodal)(nil)

// NumEntries implements ReadLogger.
func (g *Gshare) NumEntries() int { return len(g.table) }

// SetReadLog implements ReadLogger.
func (g *Gshare) SetReadLog(rs *ReadSet) { g.readLog = rs }

// StateEqualOn implements ReadLogger.
func (g *Gshare) StateEqualOn(o Predictor, rs *ReadSet) bool {
	og, ok := o.(*Gshare)
	if !ok || og.history != g.history || og.bits != g.bits || len(og.table) != len(g.table) {
		return false
	}
	for wi, w := range rs.bits {
		for ; w != 0; w &= w - 1 {
			i := uint32(wi)<<6 | uint32(bits.TrailingZeros64(w))
			if g.table[i] != og.table[i] {
				return false
			}
		}
	}
	return true
}

// NumEntries implements ReadLogger.
func (b *Bimodal) NumEntries() int { return len(b.table) }

// SetReadLog implements ReadLogger.
func (b *Bimodal) SetReadLog(rs *ReadSet) { b.readLog = rs }

// StateEqualOn implements ReadLogger.
func (b *Bimodal) StateEqualOn(o Predictor, rs *ReadSet) bool {
	ob, ok := o.(*Bimodal)
	if !ok || ob.bits != b.bits || len(ob.table) != len(b.table) {
		return false
	}
	for wi, w := range rs.bits {
		for ; w != 0; w &= w - 1 {
			i := uint32(wi)<<6 | uint32(bits.TrailingZeros64(w))
			if b.table[i] != ob.table[i] {
				return false
			}
		}
	}
	return true
}
