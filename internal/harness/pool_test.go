package harness

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"reese/internal/config"
)

func TestForEachRunsAllIndices(t *testing.T) {
	for _, parallel := range []int{0, 1, 3, 64} {
		var hits [50]atomic.Int32
		if err := forEach(len(hits), parallel, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("parallel=%d: index %d ran %d times", parallel, i, n)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		err := forEach(20, parallel, func(i int) error {
			if i == 7 || i == 13 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 7" {
			t.Fatalf("parallel=%d: err = %v, want boom 7", parallel, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := forEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDeterminism is the regression guard for the worker pool
// and per-run seeding: a figure grid and a fault campaign must render
// byte-identical tables whether run strictly sequentially or on a wide
// pool.
func TestParallelDeterminism(t *testing.T) {
	seq := Options{Insts: 8_000, Parallel: 1}
	par := Options{Insts: 8_000, Parallel: 8}

	figSeq, err := Figure2(seq)
	if err != nil {
		t.Fatal(err)
	}
	figPar, err := Figure2(par)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := figSeq.Table(), figPar.Table(); a != b {
		t.Errorf("Figure2 differs between sequential and parallel runs:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}

	campSeq, _, err := CampaignAll(20, 42, seq)
	if err != nil {
		t.Fatal(err)
	}
	campPar, _, err := CampaignAll(20, 42, par)
	if err != nil {
		t.Fatal(err)
	}
	if campSeq != campPar {
		t.Errorf("CampaignAll differs between sequential and parallel runs:\n--- sequential ---\n%s\n--- parallel ---\n%s", campSeq, campPar)
	}

	gridSeq, err := BitGrid(config.Starting().WithReese(), "li", 2_000, Options{Insts: 20_000, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	gridPar, err := BitGrid(config.Starting().WithReese(), "li", 2_000, Options{Insts: 20_000, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := BitGridTable(gridSeq), BitGridTable(gridPar); a != b {
		t.Errorf("BitGrid differs between sequential and parallel runs:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
}
