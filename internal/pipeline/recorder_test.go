package pipeline

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/obs"
)

// Regenerate with:
//
//	go test ./internal/pipeline/ -run TestFlightRecorderGolden -update-flight-golden
//
// after any intentional change to the recorder's Chrome-trace export or
// to pipeline timing. Review the diff in Perfetto before committing.
var updateFlightGolden = flag.Bool("update-flight-golden", false, "rewrite testdata/flight.golden.json")

// TestFlightRecorderGolden runs a tiny deterministic program on a REESE
// machine with one injected fault, dumps the flight recorder as Chrome
// trace-event JSON, and compares it byte-for-byte against the golden
// file. This locks both the export format (Perfetto-loadable) and the
// recorded lifecycle (a detection event is inspectable cycle by cycle).
func TestFlightRecorderGolden(t *testing.T) {
	cpu, err := New(config.Starting().WithReese(), mustProg(t, loopProgram(2)), &fault.AtSeq{Seq: 6, Bit: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(4096)
	cpu.SetRecorder(rec)
	if cpu.Recorder() != rec {
		t.Fatal("Recorder() getter broken")
	}
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.FaultsDetected == 0 {
		t.Fatalf("run outcome unexpected: halted=%v detected=%d", res.Halted, res.FaultsDetected)
	}

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("export is not valid JSON")
	}
	// Structural sanity independent of the golden bytes: the documented
	// envelope and the detection events must be present.
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	hasMismatch, hasRecovery := false, false
	for _, e := range doc.TraceEvents {
		if e.Ph != "i" {
			continue
		}
		switch {
		case len(e.Name) >= 8 && e.Name[:8] == "MISMATCH":
			hasMismatch = true
		case len(e.Name) >= 8 && e.Name[:8] == "RECOVERY":
			hasRecovery = true
		}
	}
	if !hasMismatch || !hasRecovery {
		t.Errorf("detection not inspectable: mismatch=%v recovery=%v", hasMismatch, hasRecovery)
	}

	golden := filepath.Join("testdata", "flight.golden.json")
	if *updateFlightGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-flight-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("flight-recorder export drifted from golden (len %d vs %d); if intentional, regenerate with -update-flight-golden and review in Perfetto", buf.Len(), len(want))
	}
}

// TestFlightRecorderOverheadGate checks the off-by-default contract:
// running without SetRecorder must leave no recorder in place, and two
// identical runs (recorder armed vs not) must produce identical timing
// — recording observes the machine, never perturbs it.
func TestFlightRecorderObservesWithoutPerturbing(t *testing.T) {
	src := loopProgram(50)
	plain := runOn(t, config.Starting().WithReese(), src, nil)

	cpu, err := New(config.Starting().WithReese(), mustProg(t, src), nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.SetRecorder(obs.NewRecorder(256))
	recorded, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != recorded.Cycles || plain.Committed != recorded.Committed || plain.IPC != recorded.IPC {
		t.Fatalf("recorder perturbed timing: %d/%d cycles, %d/%d committed",
			plain.Cycles, recorded.Cycles, plain.Committed, recorded.Committed)
	}
	if cpu.Recorder().Len() == 0 {
		t.Fatal("recorder captured nothing")
	}
	if cpu.Recorder().Dropped() == 0 {
		t.Fatal("256-entry ring over a 50-iteration loop should have wrapped")
	}
}
