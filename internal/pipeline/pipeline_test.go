package pipeline

import (
	"strings"
	"testing"

	"reese/internal/asm"
	"reese/internal/config"
	"reese/internal/emu"
	"reese/internal/fault"
	"reese/internal/program"
)

// loopProgram builds a simple counted loop with a body of independent ALU
// work, n iterations.
func loopProgram(n int) string {
	return `
		li r1, ` + itoa(n) + `
		li r2, 0
	loop:
		add r3, r2, r1
		xor r4, r3, r1
		sub r5, r4, r2
		or r6, r5, r3
		add r2, r2, r3
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func mustProg(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runOn(t *testing.T, cfg config.Machine, src string, inj fault.Injector) Result {
	t.Helper()
	cpu, err := New(cfg, mustProg(t, src), inj)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func oracleCount(t *testing.T, src string) uint64 {
	t.Helper()
	m, err := emu.New(mustProg(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("oracle did not halt")
	}
	return m.InstCount()
}

func TestBaselineRunsToCompletion(t *testing.T) {
	src := loopProgram(200)
	res := runOn(t, config.Starting(), src, nil)
	if !res.Halted {
		t.Fatal("did not halt")
	}
	want := oracleCount(t, src)
	if res.Committed != want {
		t.Errorf("committed %d, want %d (oracle)", res.Committed, want)
	}
	if res.IPC <= 0.5 || res.IPC > float64(config.Starting().Width) {
		t.Errorf("IPC %v implausible", res.IPC)
	}
}

func TestDependentChainSlowerThanIndependent(t *testing.T) {
	indep := `
		li r9, 500
	loop:
		add r1, r0, r9
		add r2, r0, r9
		add r3, r0, r9
		add r4, r0, r9
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	// r2 is carried across iterations, so the four adds form one long
	// serial chain over the whole run.
	dep := `
		li r9, 500
		li r2, 1
	loop:
		add r2, r2, r9
		add r2, r2, r9
		add r2, r2, r9
		add r2, r2, r9
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	ri := runOn(t, config.Starting(), indep, nil)
	rd := runOn(t, config.Starting(), dep, nil)
	if ri.IPC <= rd.IPC {
		t.Errorf("independent IPC %.3f should exceed dependent-chain IPC %.3f", ri.IPC, rd.IPC)
	}
}

func TestMispredictableBranchesCostCycles(t *testing.T) {
	// Data-dependent unpredictable branch pattern via an LCG, versus the
	// same instruction mix with an always-taken-resolvable branch.
	erratic := `
		li r9, 2000
		li r8, 12345
	loop:
		li r7, 1103515245
		mul r8, r8, r7
		addi r8, r8, 12345
		srli r6, r8, 16
		andi r6, r6, 1
		beq r6, r0, skip
		addi r5, r5, 1
	skip:
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	steady := `
		li r9, 2000
		li r8, 12345
	loop:
		li r7, 1103515245
		mul r8, r8, r7
		addi r8, r8, 12345
		srli r6, r8, 16
		andi r6, r6, 1
		beq r0, r0, skip
		addi r5, r5, 1
	skip:
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	re := runOn(t, config.Starting(), erratic, nil)
	rs := runOn(t, config.Starting(), steady, nil)
	if re.BranchAcc >= rs.BranchAcc {
		t.Errorf("erratic accuracy %.3f should be below steady %.3f", re.BranchAcc, rs.BranchAcc)
	}
	if re.IPC >= rs.IPC {
		t.Errorf("erratic IPC %.3f should be below steady %.3f", re.IPC, rs.IPC)
	}
	if re.Mispredicts == 0 {
		t.Error("erratic pattern should mispredict")
	}
}

func TestReeseCompletesWithSameInstructionCount(t *testing.T) {
	src := loopProgram(300)
	want := oracleCount(t, src)
	res := runOn(t, config.Starting().WithReese(), src, nil)
	if !res.Halted {
		t.Fatal("REESE machine did not halt")
	}
	if res.Committed != want {
		t.Errorf("committed %d, want %d", res.Committed, want)
	}
	if res.Reese == nil {
		t.Fatal("REESE stats missing")
	}
	if res.Reese.Mismatches != 0 {
		t.Errorf("spurious mismatches: %d", res.Reese.Mismatches)
	}
	if res.Reese.Enqueued != want {
		t.Errorf("RSQ saw %d instructions, want %d", res.Reese.Enqueued, want)
	}
	if res.Reese.Reexecuted != want {
		t.Errorf("re-executed %d, want %d (full duplication)", res.Reese.Reexecuted, want)
	}
	if res.Reese.Verified != want {
		t.Errorf("verified %d, want %d", res.Reese.Verified, want)
	}
}

func TestReeseSlowerThanBaselineButLessThanDouble(t *testing.T) {
	src := loopProgram(1000)
	base := runOn(t, config.Starting(), src, nil)
	reese := runOn(t, config.Starting().WithReese(), src, nil)
	if reese.Cycles <= base.Cycles {
		t.Errorf("REESE (%d cycles) should be slower than baseline (%d)", reese.Cycles, base.Cycles)
	}
	if reese.Cycles >= 2*base.Cycles {
		t.Errorf("REESE (%d cycles) should be well under 2x baseline (%d): idle capacity absorbs the R stream", reese.Cycles, base.Cycles)
	}
}

func TestSpareALUsShrinkReeseGap(t *testing.T) {
	src := loopProgram(1000)
	base := runOn(t, config.Starting(), src, nil)
	plain := runOn(t, config.Starting().WithReese(), src, nil)
	spared := runOn(t, config.Starting().WithReese().WithSpares(2, 0), src, nil)
	gapPlain := float64(plain.Cycles) - float64(base.Cycles)
	gapSpared := float64(spared.Cycles) - float64(base.Cycles)
	if gapSpared > gapPlain {
		t.Errorf("2 spare ALUs should not widen the gap: plain %+.0f vs spared %+.0f cycles", gapPlain, gapSpared)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	src := `
		la r1, buf
		li r9, 300
	loop:
		sw r9, 0(r1)
		lw r2, 0(r1)
		add r3, r2, r9
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	.data
	buf:
		.space 64
	`
	res := runOn(t, config.Starting(), src, nil)
	if !res.Halted {
		t.Fatal("did not halt")
	}
	want := oracleCount(t, src)
	if res.Committed != want {
		t.Errorf("committed %d, want %d", res.Committed, want)
	}
}

func TestReeseFaultDetectionAndRecovery(t *testing.T) {
	src := loopProgram(200)
	want := oracleCount(t, src)
	inj := &fault.AtSeq{Seq: 100, Bit: 7}
	res := runOn(t, config.Starting().WithReese(), src, inj)
	if !res.Halted {
		t.Fatal("did not halt after recovery")
	}
	if res.FaultsInjected != 1 {
		t.Fatalf("injected %d faults, want 1", res.FaultsInjected)
	}
	if res.FaultsDetected != 1 {
		t.Errorf("detected %d faults, want 1", res.FaultsDetected)
	}
	if res.FaultsSilent != 0 {
		t.Errorf("silent faults %d, want 0", res.FaultsSilent)
	}
	if res.Recoveries != 1 {
		t.Errorf("recoveries %d, want 1", res.Recoveries)
	}
	if res.Committed != want {
		t.Errorf("committed %d, want %d — recovery must not lose or duplicate instructions", res.Committed, want)
	}
	if res.DetectionLatencyMean <= 0 {
		t.Error("detection latency should be positive")
	}
	if res.PermError {
		t.Error("transient fault must not be flagged permanent")
	}
}

func TestBaselineFaultIsSilent(t *testing.T) {
	src := loopProgram(200)
	inj := &fault.AtSeq{Seq: 100, Bit: 3}
	res := runOn(t, config.Starting(), src, inj)
	if res.FaultsInjected != 1 {
		t.Fatalf("injected %d", res.FaultsInjected)
	}
	if res.FaultsDetected != 0 {
		t.Errorf("baseline detected %d faults; it has no comparator", res.FaultsDetected)
	}
	if res.FaultsSilent != 1 {
		t.Errorf("silent %d, want 1", res.FaultsSilent)
	}
}

// stuckAtPC corrupts the result of every execution of one PC, modelling a
// permanent fault.
type stuckAtPC struct{ pc uint32 }

func (s *stuckAtPC) Decide(seq uint64, tr emu.Trace) (fault.Injection, bool) {
	if tr.PC != s.pc {
		return fault.Injection{}, false
	}
	return fault.Injection{Bit: 4}, true
}

func TestPermanentFaultStopsMachine(t *testing.T) {
	src := loopProgram(50)
	prog := mustProg(t, src)
	// Fault the first loop-body instruction, every time it executes.
	pc := prog.Symbols["loop"]
	cpu, err := New(config.Starting().WithReese(), prog, &stuckAtPC{pc: pc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PermError {
		t.Error("repeated mismatch at one PC should stop the machine")
	}
	if res.Halted {
		t.Error("machine must not report a clean halt")
	}
	if res.Recoveries < 1 {
		t.Error("at least one recovery should precede the permanent stop")
	}
}

func TestMultipleTransientFaults(t *testing.T) {
	src := loopProgram(600)
	want := oracleCount(t, src)
	inj := &fault.Periodic{Interval: 500, Start: 100}
	res := runOn(t, config.Starting().WithReese(), src, inj)
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if res.FaultsInjected < 3 {
		t.Fatalf("expected several faults, got %d", res.FaultsInjected)
	}
	if res.FaultsDetected != res.FaultsInjected {
		t.Errorf("detected %d of %d faults", res.FaultsDetected, res.FaultsInjected)
	}
	if res.Committed != want {
		t.Errorf("committed %d, want %d", res.Committed, want)
	}
}

func TestPartialReexecutionSkips(t *testing.T) {
	src := loopProgram(300)
	want := oracleCount(t, src)
	res := runOn(t, config.Starting().WithReese().WithPartialReexec(2), src, nil)
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if res.Committed != want {
		t.Errorf("committed %d, want %d", res.Committed, want)
	}
	st := res.Reese
	if st.Skipped == 0 {
		t.Fatal("partial re-execution should skip instructions")
	}
	if st.Reexecuted+st.Skipped != st.Enqueued {
		t.Errorf("reexecuted %d + skipped %d != enqueued %d", st.Reexecuted, st.Skipped, st.Enqueued)
	}
	// Roughly half skipped.
	frac := float64(st.Skipped) / float64(st.Enqueued)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("skip fraction = %.2f, want ~0.5", frac)
	}
	full := runOn(t, config.Starting().WithReese(), src, nil)
	if res.Cycles > full.Cycles {
		t.Errorf("partial re-execution (%d cycles) should not be slower than full (%d)", res.Cycles, full.Cycles)
	}
}

func TestTinyRSQBackpressure(t *testing.T) {
	src := loopProgram(500)
	small := runOn(t, config.Starting().WithReese().WithRSQ(4), src, nil)
	big := runOn(t, config.Starting().WithReese().WithRSQ(64), src, nil)
	if !small.Halted || !big.Halted {
		t.Fatal("did not halt")
	}
	if small.Cycles < big.Cycles {
		t.Errorf("RSQ=4 (%d cycles) should not beat RSQ=64 (%d)", small.Cycles, big.Cycles)
	}
	if small.Reese.FullStalls == 0 {
		t.Error("a 4-entry RSQ should hit full stalls")
	}
}

func TestInstructionLimitStopsEarly(t *testing.T) {
	prog := mustProg(t, loopProgram(100000))
	cpu, err := New(config.Starting(), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Error("should have stopped on the limit, not halt")
	}
	if res.Committed < 5000 || res.Committed > 5000+uint64(config.Starting().Width) {
		t.Errorf("committed %d, want ≈5000", res.Committed)
	}
}

func TestDivideHeavyCodeStallsRUU(t *testing.T) {
	// Long-latency divides at the RUU head back everything up (the
	// paper's §6.1 observation).
	divs := `
		li r9, 200
		li r8, 7
	loop:
		div r1, r9, r8
		add r2, r1, r9
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	res := runOn(t, config.Starting(), divs, nil)
	adds := strings.Replace(divs, "div r1, r9, r8", "add r1, r9, r8", 1)
	res2 := runOn(t, config.Starting(), adds, nil)
	if res.IPC >= res2.IPC {
		t.Errorf("divide-heavy IPC %.3f should be below add IPC %.3f", res.IPC, res2.IPC)
	}
}

func TestReeseMemPortPressure(t *testing.T) {
	// A load/store-heavy loop: REESE doubles memory-port traffic, so
	// extra ports should help REESE proportionally more than baseline
	// (the paper's Figure 5 effect).
	src := `
		la r1, buf
		li r9, 800
	loop:
		lw r2, 0(r1)
		lw r3, 4(r1)
		sw r2, 8(r1)
		sw r3, 12(r1)
		lw r4, 16(r1)
		sw r4, 20(r1)
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	.data
	buf:
		.space 64
	`
	base2 := runOn(t, config.Starting(), src, nil)
	base4 := runOn(t, config.Starting().WithMemPorts(4), src, nil)
	reese2 := runOn(t, config.Starting().WithReese(), src, nil)
	reese4 := runOn(t, config.Starting().WithReese().WithMemPorts(4), src, nil)
	gain := func(a, b Result) float64 { return float64(a.Cycles) / float64(b.Cycles) }
	if gain(reese2, reese4) < gain(base2, base4) {
		t.Errorf("extra ports should help REESE (%.3fx) at least as much as baseline (%.3fx)",
			gain(reese2, reese4), gain(base2, base4))
	}
}

func TestICacheColdStallsCounted(t *testing.T) {
	res := runOn(t, config.Starting(), loopProgram(50), nil)
	if res.FetchICacheStalls == 0 {
		t.Error("cold I-cache should cause at least one fetch stall")
	}
	if res.L1I.Misses == 0 {
		t.Error("cold I-cache should miss")
	}
}

func TestConfigValidationErrors(t *testing.T) {
	bad := config.Starting()
	bad.Width = 0
	if _, err := New(bad, mustProg(t, "halt"), nil); err == nil {
		t.Error("width 0 should fail")
	}
	bad2 := config.Starting().WithReese()
	bad2.Reese.RSQSize = 0
	if _, err := New(bad2, mustProg(t, "halt"), nil); err == nil {
		t.Error("rsq 0 should fail")
	}
}

func TestHaltOnlyProgram(t *testing.T) {
	res := runOn(t, config.Starting(), "halt", nil)
	if !res.Halted || res.Committed != 1 {
		t.Errorf("halt-only: halted=%v committed=%d", res.Halted, res.Committed)
	}
	res = runOn(t, config.Starting().WithReese(), "halt", nil)
	if !res.Halted || res.Committed != 1 {
		t.Errorf("REESE halt-only: halted=%v committed=%d", res.Halted, res.Committed)
	}
}

func TestWiderMachineNotSlower(t *testing.T) {
	src := loopProgram(800)
	w8 := runOn(t, config.Starting(), src, nil)
	w16 := runOn(t, config.Starting().WithWidth(16).WithRUU(32), src, nil)
	if w16.Cycles > w8.Cycles+w8.Cycles/10 {
		t.Errorf("16-wide (%d cycles) should not be materially slower than 8-wide (%d)", w16.Cycles, w8.Cycles)
	}
}

func TestCallReturnPrediction(t *testing.T) {
	src := `
	main:
		li r9, 300
	loop:
		jal fn
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	fn:
		add r1, r9, r9
		ret
	`
	res := runOn(t, config.Starting(), src, nil)
	if !res.Halted {
		t.Fatal("did not halt")
	}
	// The RAS should make returns nearly perfectly predicted.
	if res.BranchAcc < 0.9 {
		t.Errorf("call/return accuracy %.3f too low; RAS broken?", res.BranchAcc)
	}
}
