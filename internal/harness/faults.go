package harness

import (
	"fmt"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/pipeline"
	"reese/internal/stats"
	"reese/internal/workload"
)

// CampaignResult summarises a fault-injection campaign on one workload.
type CampaignResult struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`

	Injected  uint64 `json:"injected"`
	Detected  uint64 `json:"detected"`
	Silent    uint64 `json:"silent"`
	Recovered uint64 `json:"recovered"`

	// Coverage is detected/injected.
	Coverage float64 `json:"coverage"`
	// DetectionLatencyMean/P95/Max summarise cycles from fault injection
	// (P-stream writeback) to comparator detection. This is the paper's
	// Δt argument (§2): the RSQ transit time separates the two
	// executions.
	DetectionLatencyMean float64 `json:"detection_latency_mean"`
	DetectionLatencyP95  uint64  `json:"detection_latency_p95"`
	DetectionLatencyMax  uint64  `json:"detection_latency_max"`

	// CleanIPC and FaultyIPC show the performance cost of recoveries.
	CleanIPC  float64 `json:"clean_ipc"`
	FaultyIPC float64 `json:"faulty_ipc"`
}

// Campaign injects a fault every interval committed instructions into
// workloadName running on cfg, and reports coverage and detection
// latency. A REESE machine should detect every result fault; a baseline
// machine detects none.
func Campaign(cfg config.Machine, workloadName string, interval uint64, opt Options) (CampaignResult, error) {
	opt = opt.normalize()
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return CampaignResult{}, fmt.Errorf("unknown workload %q", workloadName)
	}
	prog, err := spec.Build(spec.DefaultIters * 2)
	if err != nil {
		return CampaignResult{}, err
	}

	clean, err := pipeline.New(cfg, prog, fault.None{})
	if err != nil {
		return CampaignResult{}, err
	}
	clean.SetProgress(opt.Progress)
	cleanRes, err := clean.RunContext(opt.Ctx, opt.Insts)
	if err != nil {
		return CampaignResult{}, err
	}

	prog2, err := spec.Build(spec.DefaultIters * 2)
	if err != nil {
		return CampaignResult{}, err
	}
	inj := &fault.Periodic{Interval: interval, Start: interval / 2}
	cpu, err := pipeline.New(cfg, prog2, inj)
	if err != nil {
		return CampaignResult{}, err
	}
	cpu.SetProgress(opt.Progress)
	res, err := cpu.RunContext(opt.Ctx, opt.Insts)
	if err != nil {
		return CampaignResult{}, err
	}

	out := CampaignResult{
		Workload:             workloadName,
		Config:               cfg.Name,
		Injected:             res.FaultsInjected,
		Detected:             res.FaultsDetected,
		Silent:               res.FaultsSilent,
		Recovered:            res.Recoveries,
		DetectionLatencyMean: res.DetectionLatencyMean,
		DetectionLatencyMax:  res.DetectionLatencyMax,
		CleanIPC:             cleanRes.IPC,
		FaultyIPC:            res.IPC,
	}
	if h := cpu.DetectionLatencies(); h.Count() > 0 {
		out.DetectionLatencyP95 = h.Percentile(95)
	}
	if res.FaultsInjected > 0 {
		out.Coverage = float64(res.FaultsDetected) / float64(res.FaultsInjected)
	}
	return out, nil
}

// CampaignAll runs the fault campaign on every workload for both the
// REESE machine and the baseline — in parallel on the shared worker
// pool — and renders the comparison.
func CampaignAll(interval uint64, opt Options) (string, []CampaignResult, error) {
	type job struct {
		name string
		cfg  config.Machine
	}
	var jobs []job
	for _, name := range workload.Names() {
		jobs = append(jobs, job{name, config.Starting().WithReese()})
		jobs = append(jobs, job{name, config.Starting()})
	}
	all := make([]CampaignResult, len(jobs))
	err := forEach(len(jobs), opt.Parallel, func(i int) error {
		r, err := Campaign(jobs[i].cfg, jobs[i].name, interval, opt)
		if err != nil {
			return err
		}
		all[i] = r
		return nil
	})
	if err != nil {
		return "", nil, err
	}
	t := stats.NewTable("Fault injection: coverage and detection latency (REESE vs baseline)",
		"bench", "machine", "injected", "detected", "silent", "coverage", "lat-mean", "lat-p95", "IPC clean", "IPC faulty")
	for i, r := range all {
		machine := "baseline"
		if jobs[i].cfg.Reese.Enabled {
			machine = "REESE"
		}
		t.AddRow(r.Workload, machine,
			fmt.Sprint(r.Injected), fmt.Sprint(r.Detected), fmt.Sprint(r.Silent),
			fmt.Sprintf("%.0f%%", r.Coverage*100),
			fmt.Sprintf("%.1f", r.DetectionLatencyMean),
			fmt.Sprint(r.DetectionLatencyP95),
			fmt.Sprintf("%.3f", r.CleanIPC), fmt.Sprintf("%.3f", r.FaultyIPC))
	}
	return t.String(), all, nil
}

// SpareSearch answers the paper's central question directly: how many
// spare integer ALUs does a given configuration need before the REESE
// machine's average IPC comes within tolerance (a fraction, e.g. 0.02)
// of the baseline's? It returns the spare count and the gap at each
// step.
func SpareSearch(base config.Machine, maxSpares int, tolerance float64, opt Options) (int, []float64, error) {
	opt = opt.normalize()
	baseAvg, err := averageIPC(base, opt)
	if err != nil {
		return 0, nil, err
	}
	var gaps []float64
	for n := 0; n <= maxSpares; n++ {
		cfg := base.WithReese()
		if n > 0 {
			cfg = cfg.WithSpares(n, 0)
		}
		avg, err := averageIPC(cfg, opt)
		if err != nil {
			return 0, nil, err
		}
		gap := (baseAvg - avg) / baseAvg
		gaps = append(gaps, gap*100)
		if gap <= tolerance {
			return n, gaps, nil
		}
	}
	return -1, gaps, nil
}

// averageIPC runs cfg on all six workloads (in parallel on the shared
// pool) and returns the mean IPC; summation is in workload order, so
// the value is independent of parallelism.
func averageIPC(cfg config.Machine, opt Options) (float64, error) {
	names := workload.Names()
	ipcs := make([]float64, len(names))
	err := forEach(len(names), opt.Parallel, func(i int) error {
		res, err := runOne(cfg, names[i], opt)
		if err != nil {
			return err
		}
		ipcs[i] = res.IPC
		return nil
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range ipcs {
		sum += v
	}
	return sum / float64(len(names)), nil
}

// RSQSweep is the DESIGN.md §7 ablation: REESE average IPC as a function
// of R-stream Queue size, exposing the paper's "appropriate length"
// sensitivity (§4.3).
func RSQSweep(sizes []int, opt Options) (string, map[int]float64, error) {
	opt = opt.normalize()
	out := make(map[int]float64, len(sizes))
	t := stats.NewTable("Ablation: R-stream Queue size vs average IPC (starting config)",
		"rsq size", "avg IPC", "gap vs baseline %")
	baseAvg, err := averageIPC(config.Starting(), opt)
	if err != nil {
		return "", nil, err
	}
	for _, size := range sizes {
		avg, err := averageIPC(config.Starting().WithReese().WithRSQ(size), opt)
		if err != nil {
			return "", nil, err
		}
		out[size] = avg
		t.AddRow(fmt.Sprint(size), fmt.Sprintf("%.3f", avg),
			fmt.Sprintf("%.1f", stats.PercentDelta(baseAvg, avg)))
	}
	return t.String(), out, nil
}

// PartialReexecSweep is the paper's §7 future-work experiment:
// re-execute only one in every n instructions, trading coverage for
// speed. Coverage is measured with randomly-placed faults (a periodic
// injector would alias with the deterministic skip pattern and report
// all-or-nothing coverage).
func PartialReexecSweep(everies []int, opt Options) (string, error) {
	opt = opt.normalize()
	t := stats.NewTable("Ablation: partial re-execution (paper §7 future work)",
		"re-execute 1/N", "avg IPC", "gap vs baseline %", "coverage of injected faults")
	baseAvg, err := averageIPC(config.Starting(), opt)
	if err != nil {
		return "", err
	}
	for _, n := range everies {
		cfg := config.Starting().WithReese().WithPartialReexec(n)
		avg, err := averageIPC(cfg, opt)
		if err != nil {
			return "", err
		}
		coverage, err := randomFaultCoverage(cfg, "gcc", opt)
		if err != nil {
			return "", err
		}
		t.AddRow(fmt.Sprintf("1/%d", n), fmt.Sprintf("%.3f", avg),
			fmt.Sprintf("%.1f", stats.PercentDelta(baseAvg, avg)),
			fmt.Sprintf("%.0f%%", coverage*100))
	}
	return t.String(), nil
}

// randomFaultCoverage injects randomly-placed faults (roughly one per
// 2000 instructions) and returns the detected fraction.
func randomFaultCoverage(cfg config.Machine, workloadName string, opt Options) (float64, error) {
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return 0, fmt.Errorf("unknown workload %q", workloadName)
	}
	prog, err := spec.Build(spec.DefaultIters * 2)
	if err != nil {
		return 0, err
	}
	inj := fault.NewRandom(1<<32/2000, 0xFEED)
	cpu, err := pipeline.New(cfg, prog, inj)
	if err != nil {
		return 0, err
	}
	res, err := cpu.Run(opt.Insts)
	if err != nil {
		return 0, err
	}
	if res.FaultsInjected == 0 {
		return 0, nil
	}
	return float64(res.FaultsDetected) / float64(res.FaultsInjected), nil
}

// IdleCapacity measures the §4.1 premise: the fraction of issue slots
// and functional units a baseline machine leaves idle.
func IdleCapacity(opt Options) (string, error) {
	opt = opt.normalize()
	t := stats.NewTable("Idle capacity on the baseline (paper §4.1 premise)",
		"bench", "IPC", "of width", "ALU util", "Mult util", "MemPort util")
	for _, name := range workload.Names() {
		res, err := runOne(config.Starting(), name, opt)
		if err != nil {
			return "", err
		}
		t.AddRow(name,
			fmt.Sprintf("%.3f", res.IPC),
			fmt.Sprintf("%.0f%%", res.IPC/float64(config.Starting().Width)*100),
			fmt.Sprintf("%.0f%%", res.ALUUtil*100),
			fmt.Sprintf("%.0f%%", res.MultUtil*100),
			fmt.Sprintf("%.0f%%", res.MemPortUtil*100))
	}
	return t.String(), nil
}

// BitGridResult is one cell of a bit-position injection grid.
type BitGridResult struct {
	Bit      uint8
	Detected bool
	Latency  uint64
}

// BitGrid injects one fault per bit position (0-31) at a fixed point in
// the workload and reports detection per position — demonstrating the
// comparator's single-bit completeness on real pipeline timing rather
// than in unit isolation.
func BitGrid(cfg config.Machine, workloadName string, atSeq uint64, opt Options) ([]BitGridResult, error) {
	opt = opt.normalize()
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", workloadName)
	}
	out := make([]BitGridResult, 32)
	err := forEach(32, opt.Parallel, func(i int) error {
		bit := uint8(i)
		prog, err := spec.Build(spec.DefaultIters)
		if err != nil {
			return err
		}
		inj := &fault.AtSeq{Seq: atSeq, Bit: bit}
		cpu, err := pipeline.New(cfg, prog, inj)
		if err != nil {
			return err
		}
		res, err := cpu.Run(atSeq + 20_000)
		if err != nil {
			return err
		}
		cell := BitGridResult{Bit: bit, Detected: res.FaultsDetected == 1}
		if cell.Detected {
			cell.Latency = uint64(res.DetectionLatencyMean)
		}
		out[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BitGridTable renders the grid.
func BitGridTable(grid []BitGridResult) string {
	t := stats.NewTable("Fault grid: one bit flip per position (detection + latency)",
		"bit", "detected", "latency (cycles)")
	for _, c := range grid {
		det := "no"
		lat := "-"
		if c.Detected {
			det = "yes"
			lat = fmt.Sprint(c.Latency)
		}
		t.AddRow(fmt.Sprint(c.Bit), det, lat)
	}
	return t.String()
}
