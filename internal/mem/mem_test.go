package mem

import (
	"testing"
	"testing/quick"
)

func smallCache(t *testing.T, next Level) *Cache {
	t.Helper()
	c, err := NewCache(CacheConfig{
		Name:       "l1",
		SizeBytes:  256, // 4 sets × 2 ways × 32B
		BlockBytes: 32,
		Assoc:      2,
		HitLatency: 2,
	}, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "x", SizeBytes: 100, BlockBytes: 32, Assoc: 2, HitLatency: 1}, // size not divisible
		{Name: "x", SizeBytes: 256, BlockBytes: 33, Assoc: 2, HitLatency: 1}, // block not pow2
		{Name: "x", SizeBytes: 256, BlockBytes: 32, Assoc: 0, HitLatency: 1}, // zero assoc
		{Name: "x", SizeBytes: 256, BlockBytes: 32, Assoc: 2, HitLatency: 0}, // zero latency
		{Name: "x", SizeBytes: 192, BlockBytes: 32, Assoc: 2, HitLatency: 1}, // 3 sets
		{Name: "x", SizeBytes: 0, BlockBytes: 32, Assoc: 2, HitLatency: 1},   // zero size
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: config %+v should be invalid", i, cfg)
		}
	}
	good := CacheConfig{Name: "ok", SizeBytes: 32 * 1024, BlockBytes: 32, Assoc: 2, HitLatency: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	mm := NewMainMemory(18)
	c := smallCache(t, mm)
	if lat := c.Access(0x1000, false); lat != 2+18 {
		t.Errorf("cold miss latency = %d, want 20", lat)
	}
	if lat := c.Access(0x1000, false); lat != 2 {
		t.Errorf("hit latency = %d, want 2", lat)
	}
	// Same block, different offset: still a hit.
	if lat := c.Access(0x101c, false); lat != 2 {
		t.Errorf("same-block hit latency = %d, want 2", lat)
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	mm := NewMainMemory(10)
	c := smallCache(t, mm) // 4 sets, 2 ways, 32B blocks: set = (addr>>5)&3
	// Three blocks mapping to set 0: addresses 0, 128*1, ... set index bits are addr[6:5].
	a := uint32(0x0000) // set 0
	b := uint32(0x0080) // set 0 (bit7 is tag)
	d := uint32(0x0100) // set 0
	c.Access(a, false)  // miss, A in
	c.Access(b, false)  // miss, B in
	c.Access(a, false)  // hit, A is MRU
	c.Access(d, false)  // miss, evicts B (LRU)
	if !c.Probe(a) {
		t.Error("A should still be resident")
	}
	if c.Probe(b) {
		t.Error("B should have been evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Error("D should be resident")
	}
}

func TestWriteBackOnDirtyEviction(t *testing.T) {
	mm := NewMainMemory(10)
	c := smallCache(t, mm)
	a := uint32(0x0000)
	b := uint32(0x0080)
	d := uint32(0x0100)
	c.Access(a, true)         // write miss, allocate dirty
	c.Access(b, false)        // read miss
	lat := c.Access(d, false) // evicts dirty A: write-back + fetch
	if lat != 2+10+10 {
		t.Errorf("dirty eviction latency = %d, want 22 (hit+wb+fetch)", lat)
	}
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("writebacks = %d, want 1", got)
	}
	// Clean eviction must not write back.
	c.Access(a, false) // evicts b or d (both clean now? b clean, d clean) -> no wb
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("writebacks after clean eviction = %d, want 1", got)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	mm := NewMainMemory(10)
	c := smallCache(t, mm)
	a := uint32(0x0000)
	c.Access(a, false) // clean
	c.Access(a, true)  // dirty via write hit
	c.Access(0x0080, false)
	c.Access(0x0100, false) // evicts a (LRU), must write back
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("writebacks = %d, want 1", got)
	}
}

func TestFlush(t *testing.T) {
	mm := NewMainMemory(10)
	c := smallCache(t, mm)
	c.Access(0, true)
	c.Access(32, false)
	if n := c.Flush(); n != 1 {
		t.Errorf("flush wrote back %d lines, want 1", n)
	}
	if c.Probe(0) || c.Probe(32) {
		t.Error("flush should invalidate everything")
	}
}

func TestTwoLevelHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		L1I:        CacheConfig{Name: "il1", SizeBytes: 1024, BlockBytes: 32, Assoc: 2, HitLatency: 2},
		L1D:        CacheConfig{Name: "dl1", SizeBytes: 1024, BlockBytes: 32, Assoc: 2, HitLatency: 2},
		L2:         CacheConfig{Name: "ul2", SizeBytes: 8192, BlockBytes: 64, Assoc: 4, HitLatency: 12},
		ITLB:       TLBConfig{Name: "itlb", Entries: 16, Assoc: 4, PageBytes: 4096, MissLatency: 30},
		DTLB:       TLBConfig{Name: "dtlb", Entries: 32, Assoc: 4, PageBytes: 4096, MissLatency: 30},
		MemLatency: 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First data access: D-TLB miss (30) + L1 miss (2) + L2 miss (12) + mem (18).
	if lat := h.DataLatency(0x2000, false); lat != 30+2+12+18 {
		t.Errorf("cold access latency = %d, want 62", lat)
	}
	// Second access to same line: all hits, TLB hit adds nothing.
	if lat := h.DataLatency(0x2004, false); lat != 2 {
		t.Errorf("warm access latency = %d, want 2", lat)
	}
	// Instruction fetch path is independent of data path at L1.
	if lat := h.FetchLatency(0x2000); lat != 30+2+12 {
		t.Errorf("fetch after data warm: = %d, want 44 (L2 hit)", lat)
	}
}

func TestTLB(t *testing.T) {
	tlb, err := NewTLB(TLBConfig{Name: "t", Entries: 4, Assoc: 2, PageBytes: 4096, MissLatency: 30})
	if err != nil {
		t.Fatal(err)
	}
	if lat := tlb.Translate(0); lat != 30 {
		t.Errorf("cold translate = %d, want 30", lat)
	}
	if lat := tlb.Translate(4095); lat != 0 {
		t.Errorf("same-page translate = %d, want 0", lat)
	}
	if lat := tlb.Translate(4096); lat != 30 {
		t.Errorf("next-page translate = %d, want 30", lat)
	}
	s := tlb.Stats()
	if s.Accesses != 3 || s.Hits != 1 || s.Misses != 2 {
		t.Errorf("tlb stats = %+v", s)
	}
}

func TestTLBConfigValidate(t *testing.T) {
	bad := []TLBConfig{
		{Name: "x", Entries: 4, Assoc: 2, PageBytes: 1000, MissLatency: 30},
		{Name: "x", Entries: 5, Assoc: 2, PageBytes: 4096, MissLatency: 30},
		{Name: "x", Entries: 0, Assoc: 2, PageBytes: 4096, MissLatency: 30},
		{Name: "x", Entries: 12, Assoc: 2, PageBytes: 4096, MissLatency: 30}, // 6 sets
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestMissRate(t *testing.T) {
	s := CacheStats{}
	if s.MissRate() != 0 {
		t.Error("empty miss rate should be 0")
	}
	s = CacheStats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

// Property: after accessing addr, an immediate re-access of the same
// address always hits at L1 latency (temporal locality invariant).
func TestAccessThenHitProperty(t *testing.T) {
	mm := NewMainMemory(18)
	c, err := NewCache(CacheConfig{Name: "p", SizeBytes: 4096, BlockBytes: 32, Assoc: 4, HitLatency: 3}, mm)
	if err != nil {
		t.Fatal(err)
	}
	f := func(addr uint32, write bool) bool {
		c.Access(addr, write)
		return c.Access(addr, false) == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: hits+misses == accesses for arbitrary access streams.
func TestStatsBalanceProperty(t *testing.T) {
	mm := NewMainMemory(18)
	c, err := NewCache(CacheConfig{Name: "p", SizeBytes: 512, BlockBytes: 16, Assoc: 2, HitLatency: 1}, mm)
	if err != nil {
		t.Fatal(err)
	}
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(a, a%3 == 0)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// A small direct-mapped cache behaves like a trivial modulo map: two
// addresses with the same index but different tags always conflict.
func TestDirectMappedConflict(t *testing.T) {
	mm := NewMainMemory(10)
	c, err := NewCache(CacheConfig{Name: "dm", SizeBytes: 128, BlockBytes: 32, Assoc: 1, HitLatency: 1}, mm)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, false)
	c.Access(128, false) // same set (4 sets × 32B), different tag
	if c.Probe(0) {
		t.Error("direct-mapped conflict should evict the first block")
	}
	if got := c.Stats().Misses; got != 2 {
		t.Errorf("misses = %d", got)
	}
}

func TestMainMemoryCounts(t *testing.T) {
	mm := NewMainMemory(18)
	mm.Access(0, false)
	mm.Access(4, true)
	if mm.Accesses() != 2 {
		t.Errorf("accesses = %d", mm.Accesses())
	}
	if mm.Name() != "mem" {
		t.Errorf("name = %q", mm.Name())
	}
}
