package isa

// Pure (memory-free) operation semantics, shared by the functional
// emulator, the pipeline's execution stage, and REESE's R-stream
// re-execution. Keeping one implementation guarantees that a redundant
// execution computes exactly what the primary execution computed, so a
// P/R mismatch can only come from an injected (or real) fault.

// EvalALU computes the result of a non-memory, non-control operation.
// a and b are the values of rs1 and rs2; imm is the decoded immediate.
// It returns the value written to the destination register.
//
// Division by zero follows the convention of returning all-ones for
// quotients and the dividend for remainders (as RISC-V does), so the
// machine never traps.
func EvalALU(op Op, a, b uint32, imm int32) uint32 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpMulh:
		return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
	case OpDiv:
		if b == 0 {
			return ^uint32(0)
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return a // overflow: quotient = dividend
		}
		return uint32(int32(a) / int32(b))
	case OpDivu:
		if b == 0 {
			return ^uint32(0)
		}
		return a / b
	case OpRem:
		if b == 0 {
			return a
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return 0
		}
		return uint32(int32(a) % int32(b))
	case OpRemu:
		if b == 0 {
			return a
		}
		return a % b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpNor:
		return ^(a | b)
	case OpSll:
		return a << (b & 31)
	case OpSrl:
		return a >> (b & 31)
	case OpSra:
		return uint32(int32(a) >> (b & 31))
	case OpSlt:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	case OpSltu:
		if a < b {
			return 1
		}
		return 0

	case OpAddi:
		return a + uint32(imm)
	case OpAndi:
		return a & uint32(imm)
	case OpOri:
		return a | uint32(imm)
	case OpXori:
		return a ^ uint32(imm)
	case OpSlti:
		if int32(a) < imm {
			return 1
		}
		return 0
	case OpSltiu:
		if a < uint32(imm) {
			return 1
		}
		return 0
	case OpSlli:
		return a << (uint32(imm) & 31)
	case OpSrli:
		return a >> (uint32(imm) & 31)
	case OpSrai:
		return uint32(int32(a) >> (uint32(imm) & 31))
	case OpLui:
		return uint32(imm) << 16
	}
	return 0
}

// BranchTaken evaluates a conditional branch's direction from its two
// source operands.
func BranchTaken(op Op, a, b uint32) bool {
	switch op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	case OpBlt:
		return int32(a) < int32(b)
	case OpBge:
		return int32(a) >= int32(b)
	case OpBltu:
		return a < b
	case OpBgeu:
		return a >= b
	}
	return false
}

// EffectiveAddress computes a load/store's memory address.
func EffectiveAddress(base uint32, imm int32) uint32 {
	return base + uint32(imm)
}

// MemWidth returns the access size in bytes of a load or store opcode,
// or 0 if op does not access memory.
func MemWidth(op Op) uint32 {
	switch op {
	case OpLw, OpSw, OpLwf, OpSwf:
		return 4
	case OpLh, OpLhu, OpSh:
		return 2
	case OpLb, OpLbu, OpSb:
		return 1
	}
	return 0
}

// ExtendLoad applies the sign/zero extension a load opcode performs on
// the raw little-endian bytes read from memory (already assembled into
// the low bits of raw).
func ExtendLoad(op Op, raw uint32) uint32 {
	switch op {
	case OpLw, OpLwf:
		return raw
	case OpLh:
		return uint32(int32(int16(raw)))
	case OpLhu:
		return raw & 0xffff
	case OpLb:
		return uint32(int32(int8(raw)))
	case OpLbu:
		return raw & 0xff
	}
	return raw
}
